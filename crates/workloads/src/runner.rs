//! The experiment runner: materializes a [`Scenario`], executes it on the
//! requested [`powersparse_congest::engine::RoundEngine`] backend,
//! re-verifies the output with the `powersparse_graphs::check` predicates
//! and records everything in a [`RunRecord`].
//!
//! Nothing here trusts an algorithm: a run only counts as passed when the
//! slow, obviously-correct checkers agree (MIS independence + maximality,
//! ruling-set packing + covering, sparsifier invariant I3 + domination).

use crate::manifest::{
    NetRecord, PhaseWall, RecoveryRecord, RunRecord, SuiteManifest, TraceRow, Validation, WallStats,
};
use crate::scenario::{AlgorithmSpec, EngineSpec, RecoverySpec, Scenario};
use powersparse::mis::{beeping_mis, luby_mis, mis_power, PostShattering};
use powersparse::nd::{diameter_bound, power_nd, NetworkDecomposition};
use powersparse::params::TheoryParams;
use powersparse::ruling::{beta_ruling_set, det_ruling_set_k2};
use powersparse::sparsify::{sparsify_power, SamplingStrategy, SparsifyOutcome};
use powersparse_congest::engine::{Metrics, RoundEngine};
use powersparse_congest::probe::{NoProbe, RecoveryObs, SpanProbe, TraceProbe};
use powersparse_congest::sim::{SimConfig, Simulator};
use powersparse_engine::{
    FaultPlan, PooledSimulator, ProcessOptions, ProcessSimulator, RecoveryPolicy, ShardedSimulator,
};
use powersparse_graphs::{check, generators, power, Graph, NodeId};
use std::time::{Duration, Instant};

/// The laptop-scale theory constants every suite run uses (the same
/// choice as the `experiments` tables; see DESIGN.md §3 substitution 4).
pub fn suite_params() -> TheoryParams {
    TheoryParams::scaled()
}

/// How often a scenario's run phase is executed for wall-clock
/// statistics, following the measured-benchmarking discipline of
/// invocation/iteration separation: `warmup` whole invocations are
/// discarded, then each of `invocations` timed blocks runs the
/// algorithm `iterations` times on a fresh engine and contributes one
/// sample (elapsed / iterations). Counters are taken from the first
/// measured run and asserted identical across invocations — only wall
/// clock may vary.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Repeat {
    /// Timed invocations (one wall sample each). Must be ≥ 1.
    pub invocations: usize,
    /// Algorithm runs per invocation (each on a fresh engine). Must be
    /// ≥ 1.
    pub iterations: usize,
    /// Discarded warmup invocations before measurement starts.
    pub warmup: usize,
}

impl Repeat {
    /// The default non-repeated measurement: one invocation, one
    /// iteration, no warmup — exactly the pre-statistics runner
    /// behavior.
    pub fn once() -> Self {
        Self {
            invocations: 1,
            iterations: 1,
            warmup: 0,
        }
    }
}

impl Default for Repeat {
    fn default() -> Self {
        Self::once()
    }
}

/// Seeded chaos injection for process-engine runs: every process
/// scenario gets a deterministic [`FaultPlan`] (kills + frame
/// corruptions scheduled by a splitmix64 stream over the scenario's
/// seed) and runs under shard supervision — a scenario without an
/// explicit [`RecoverySpec`] is upgraded to [`RecoverySpec::default`].
/// Non-process engines have no wire to disturb and ignore the spec.
///
/// Chaos is the *point* of the recovery contract: the disturbed run
/// must produce bit-for-bit the counters of an undisturbed one, so a
/// chaos-injected manifest still diffs clean against the committed
/// baseline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChaosSpec {
    /// Base seed of the fault schedule (combined with each scenario's
    /// own seed, so every run draws a distinct plan).
    pub seed: u64,
    /// Child kills (SIGKILL mid-round) per process run.
    pub kills: usize,
    /// Frame corruptions (poisoned transport) per process run.
    pub corruptions: usize,
}

impl Default for ChaosSpec {
    fn default() -> Self {
        Self {
            seed: 0xC4A0_5BA5,
            kills: 2,
            corruptions: 1,
        }
    }
}

/// The round horizon chaos events are scheduled inside. Kept small so
/// the faults land within even the shortest smoke-suite run.
const CHAOS_HORIZON: u64 = 4;

impl ChaosSpec {
    /// The fault plan this spec draws for one process scenario.
    pub fn plan_for(&self, sc: &Scenario, shards: usize) -> FaultPlan {
        let seed = self.seed ^ sc.seed.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        FaultPlan::seeded(
            seed,
            shards as u16,
            CHAOS_HORIZON,
            self.kills,
            self.corruptions,
            0,
        )
    }
}

/// Per-run options of [`run_scenario_with`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RunOptions {
    /// Repetition scheme for wall-clock statistics.
    pub repeat: Repeat,
    /// Capture a per-round activity trace: `Some(limit)` runs the
    /// scenario once more, untimed, with a
    /// [`powersparse_congest::probe::TraceProbe`] attached and stores
    /// at most `limit` evenly strided rows (real round indices are
    /// preserved; `Some(0)` keeps every round).
    pub trace: Option<usize>,
    /// Attach the span profiler: one extra untimed execution with a
    /// [`SpanProbe`], aggregated into the record's optional `profile`
    /// manifest section (see [`crate::profile`]).
    pub profile: bool,
    /// Inject seeded faults into process-engine runs (under forced
    /// supervision); `None` leaves the wire undisturbed.
    pub chaos: Option<ChaosSpec>,
}

/// What an algorithm produced, in the shape its checker wants.
enum AlgOutput {
    /// A membership mask (MIS of `G^k`).
    Mask(Vec<bool>),
    /// An explicit node set with its `(α, β)` ruling-set targets.
    RulingSet {
        set: Vec<NodeId>,
        alpha: usize,
        beta: usize,
    },
    /// A sparsifier outcome (mask + I3 state).
    Sparsifier(Box<SparsifyOutcome>),
    /// A network decomposition of `G^k`.
    Decomposition(NetworkDecomposition),
}

/// Executes one scenario end to end.
///
/// # Errors
///
/// Returns `Err` only for *specification* problems (invalid scenario,
/// algorithm failure such as an exhausted seed scan) — a run that merely
/// fails validation still returns `Ok` with
/// `record.validation.passed == false`, so a suite can report it.
pub fn run_scenario(sc: &Scenario) -> Result<RunRecord, String> {
    run_scenario_with(sc, &RunOptions::default())
}

/// The wire and supervision options a scenario's process engine runs
/// under (Unix socket vs loopback TCP, optional shaping, optional
/// recovery policy).
fn process_options(sc: &Scenario) -> ProcessOptions {
    let (recovery, checkpoint_every) = match sc.recovery {
        None => (RecoveryPolicy::FailFast, 0),
        Some(r) => (
            RecoveryPolicy::Recover {
                max_retries: r.max_retries,
                backoff: Duration::from_millis(r.backoff_ms),
            },
            r.checkpoint_every,
        ),
    };
    ProcessOptions {
        net: sc.net,
        tcp: sc.tcp,
        recovery,
        checkpoint_every,
    }
}

/// One run-phase execution: builds a fresh engine for the scenario's
/// backend, runs the algorithm, returns output + final metrics. A
/// `chaos` plan (process engine only) is installed on the fresh engine
/// before the run, so every invocation is disturbed identically.
fn execute(
    g: &Graph,
    config: SimConfig,
    sc: &Scenario,
    chaos: Option<&FaultPlan>,
) -> Result<(AlgOutput, Metrics), String> {
    match sc.engine {
        EngineSpec::Sequential => {
            let mut sim = Simulator::new(g, config);
            let out = run_generic(&mut sim, sc)?;
            let m = sim.metrics().clone();
            Ok((out, m))
        }
        EngineSpec::Sharded { shards } => {
            let mut sim = ShardedSimulator::with_shards(g, config, shards);
            let out = run_generic(&mut sim, sc)?;
            let m = RoundEngine::metrics(&sim).clone();
            Ok((out, m))
        }
        EngineSpec::Pooled { shards } => {
            let mut sim = PooledSimulator::with_shards(g, config, shards);
            let out = run_generic(&mut sim, sc)?;
            let m = RoundEngine::metrics(&sim).clone();
            Ok((out, m))
        }
        EngineSpec::Process { shards } => {
            let mut sim =
                ProcessSimulator::with_options(g, config, shards, NoProbe, process_options(sc));
            if let Some(plan) = chaos {
                sim.set_fault_plan(plan.clone());
            }
            let out = run_generic(&mut sim, sc)?;
            let m = RoundEngine::metrics(&sim).clone();
            Ok((out, m))
        }
    }
}

/// One untimed traced execution: the same run with a [`TraceProbe`]
/// attached, reduced to manifest [`TraceRow`]s and downsampled to at
/// most `limit` rows (`0` = keep all; real round indices survive
/// downsampling).
fn execute_traced(
    g: &Graph,
    config: SimConfig,
    sc: &Scenario,
    limit: usize,
) -> Result<Vec<TraceRow>, String> {
    let trace = match sc.engine {
        EngineSpec::Sequential => {
            let mut sim = Simulator::with_probe(g, config, TraceProbe::new());
            run_generic(&mut sim, sc)?;
            sim.into_probe()
        }
        EngineSpec::Sharded { shards } => {
            let mut sim = ShardedSimulator::with_probe(g, config, shards, TraceProbe::new());
            run_generic(&mut sim, sc)?;
            sim.into_probe()
        }
        EngineSpec::Pooled { shards } => {
            let mut sim = PooledSimulator::with_probe(g, config, shards, TraceProbe::new());
            run_generic(&mut sim, sc)?;
            sim.into_probe()
        }
        EngineSpec::Process { shards } => {
            let mut sim = ProcessSimulator::with_options(
                g,
                config,
                shards,
                TraceProbe::new(),
                process_options(sc),
            );
            run_generic(&mut sim, sc)?;
            sim.into_probe()
        }
    };
    let rows: Vec<TraceRow> = trace
        .rounds
        .iter()
        .map(|obs| TraceRow {
            round: obs.round,
            active_edges: obs.active_edges,
            dirty_nodes: obs.dirty_nodes,
            messages: obs.messages,
            bits: obs.bits,
        })
        .collect();
    Ok(downsample(rows, limit))
}

/// One untimed profiled execution: the same run with a [`SpanProbe`]
/// attached, returning the raw per-round observations and stage spans
/// for aggregation (see [`crate::profile`]).
pub fn execute_spanned(g: &Graph, config: SimConfig, sc: &Scenario) -> Result<SpanProbe, String> {
    match sc.engine {
        EngineSpec::Sequential => {
            let mut sim = Simulator::with_probe(g, config, SpanProbe::new());
            run_generic(&mut sim, sc)?;
            Ok(sim.into_probe())
        }
        EngineSpec::Sharded { shards } => {
            let mut sim = ShardedSimulator::with_probe(g, config, shards, SpanProbe::new());
            run_generic(&mut sim, sc)?;
            Ok(sim.into_probe())
        }
        EngineSpec::Pooled { shards } => {
            let mut sim = PooledSimulator::with_probe(g, config, shards, SpanProbe::new());
            run_generic(&mut sim, sc)?;
            Ok(sim.into_probe())
        }
        EngineSpec::Process { shards } => {
            let mut sim = ProcessSimulator::with_options(
                g,
                config,
                shards,
                SpanProbe::new(),
                process_options(sc),
            );
            run_generic(&mut sim, sc)?;
            Ok(sim.into_probe())
        }
    }
}

/// Builds a scenario's graph once and profiles `repeats` independent
/// executions with a [`SpanProbe`] attached (the `experiments profile`
/// front end; aggregate the probes with [`crate::profile::breakdown`]).
///
/// # Errors
///
/// As [`run_scenario`]; additionally rejects `repeats == 0`.
pub fn profile_scenario(sc: &Scenario, repeats: usize) -> Result<Vec<SpanProbe>, String> {
    sc.validate_spec()?;
    if repeats == 0 {
        return Err("profile needs at least one repeat".into());
    }
    let g = sc.family.build(sc.seed);
    let config = SimConfig::for_graph(&g);
    (0..repeats)
        .map(|_| execute_spanned(&g, config, sc))
        .collect()
}

/// Evenly strided downsampling that keeps real round indices.
fn downsample(rows: Vec<TraceRow>, limit: usize) -> Vec<TraceRow> {
    if limit == 0 || rows.len() <= limit {
        return rows;
    }
    let stride = rows.len().div_ceil(limit);
    rows.into_iter().step_by(stride).collect()
}

/// Executes one scenario with explicit repetition/trace options (see
/// [`run_scenario`] for the error contract).
///
/// # Errors
///
/// As [`run_scenario`]; additionally rejects a [`Repeat`] with zero
/// invocations or iterations, and reports counters that drift between
/// invocations of the same scenario (which would mean the run is not
/// deterministic and its statistics meaningless).
pub fn run_scenario_with(sc: &Scenario, opts: &RunOptions) -> Result<RunRecord, String> {
    sc.validate_spec()?;
    let rep = opts.repeat;
    if rep.invocations == 0 || rep.iterations == 0 {
        return Err("repeat needs at least one invocation and one iteration".into());
    }
    // Chaos forces supervision: a process scenario without an explicit
    // recovery policy is upgraded to the default one (fail-fast would
    // turn the first injected fault into an abort). The upgrade is
    // reflected in the record's `recovery` section but not in the run
    // name — recovery is operational, not semantic.
    let mut sc = sc.clone();
    let is_process = matches!(sc.engine, EngineSpec::Process { .. });
    if opts.chaos.is_some() && is_process && sc.recovery.is_none() {
        sc.recovery = Some(RecoverySpec::default());
    }
    let sc = &sc;
    let chaos_plan = match (opts.chaos, sc.engine) {
        (Some(chaos), EngineSpec::Process { shards }) => Some(chaos.plan_for(sc, shards)),
        _ => None,
    };
    let chaos_plan = chaos_plan.as_ref();
    let t = Instant::now();
    let g = sc.family.build(sc.seed);
    let build_us = t.elapsed().as_micros() as u64;
    let config = SimConfig::for_graph(&g);

    for _ in 0..rep.warmup {
        execute(&g, config, sc, chaos_plan)?;
    }

    let mut samples: Vec<f64> = Vec::with_capacity(rep.invocations);
    let mut first: Option<(AlgOutput, Metrics)> = None;
    for _ in 0..rep.invocations {
        let t = Instant::now();
        let mut last = None;
        for _ in 0..rep.iterations {
            last = Some(execute(&g, config, sc, chaos_plan)?);
        }
        samples.push(t.elapsed().as_micros() as f64 / rep.iterations as f64);
        let (out, metrics) = last.expect("iterations >= 1");
        match &first {
            None => first = Some((out, metrics)),
            Some((_, m0)) => {
                if *m0 != metrics {
                    return Err(format!(
                        "counters drifted between invocations of {} — \
                         rounds {} vs {}, messages {} vs {}",
                        sc.name(),
                        m0.rounds,
                        metrics.rounds,
                        m0.messages,
                        metrics.messages
                    ));
                }
            }
        }
    }
    let (output, metrics) = first.expect("invocations >= 1");
    let wall_stats = WallStats::from_samples(&samples);
    let run_us = samples[0] as u64;

    let trace = match opts.trace {
        None => None,
        Some(limit) => Some(execute_traced(&g, config, sc, limit)?),
    };
    let profile = if opts.profile {
        let probe = execute_spanned(&g, config, sc)?;
        Some(crate::profile::profile_stats(std::slice::from_ref(&probe)))
    } else {
        None
    };

    let t = Instant::now();
    let (validation, output_size) = validate(&g, sc, &output);
    let validate_us = t.elapsed().as_micros() as u64;

    let mut rec = record(
        sc,
        &g,
        &metrics,
        PhaseWall {
            build_us,
            run_us,
            validate_us,
        },
        wall_stats,
        trace,
        validation,
        output_size,
    );
    rec.profile = profile;
    Ok(rec)
}

/// One seeded chaos probe (`experiments chaos`): runs the scenario once
/// on the supervised process engine with the chaos plan installed, and
/// returns the run record plus what the supervisor saw — the recovery
/// event log (one entry per respawn attempt, in order) and how many
/// planned faults actually fired. A scenario without an explicit
/// [`RecoverySpec`] runs under [`RecoverySpec::default`].
///
/// # Errors
///
/// As [`run_scenario`]; additionally rejects non-process engines (there
/// is no wire to disturb).
pub fn run_chaos_scenario(
    sc: &Scenario,
    chaos: &ChaosSpec,
) -> Result<(RunRecord, Vec<RecoveryObs>, u64), String> {
    sc.validate_spec()?;
    let EngineSpec::Process { shards } = sc.engine else {
        return Err("chaos injection requires a process-engine scenario".into());
    };
    let mut sc = sc.clone();
    if sc.recovery.is_none() {
        sc.recovery = Some(RecoverySpec::default());
    }
    let sc = &sc;
    let t = Instant::now();
    let g = sc.family.build(sc.seed);
    let build_us = t.elapsed().as_micros() as u64;
    let config = SimConfig::for_graph(&g);
    let mut sim = ProcessSimulator::with_options(&g, config, shards, NoProbe, process_options(sc));
    sim.set_fault_plan(chaos.plan_for(sc, shards));
    let t = Instant::now();
    let output = run_generic(&mut sim, sc)?;
    let run_us = t.elapsed().as_micros() as u64;
    let metrics = RoundEngine::metrics(&sim).clone();
    let events = sim.recovery_log().to_vec();
    let fired = sim.faults_fired();
    drop(sim);
    let t = Instant::now();
    let (validation, output_size) = validate(&g, sc, &output);
    let validate_us = t.elapsed().as_micros() as u64;
    let rec = record(
        sc,
        &g,
        &metrics,
        PhaseWall {
            build_us,
            run_us,
            validate_us,
        },
        WallStats::single(run_us),
        None,
        validation,
        output_size,
    );
    Ok((rec, events, fired))
}

/// Executes a whole scenario matrix, in order.
///
/// # Errors
///
/// Propagates the first specification/algorithm error (validation
/// failures do not abort the suite; they are recorded per run).
pub fn run_suite(suite: &str, scenarios: &[Scenario]) -> Result<SuiteManifest, String> {
    run_suite_with(suite, scenarios, &RunOptions::default())
}

/// Executes a whole scenario matrix with explicit options.
///
/// # Errors
///
/// As [`run_suite`].
pub fn run_suite_with(
    suite: &str,
    scenarios: &[Scenario],
    opts: &RunOptions,
) -> Result<SuiteManifest, String> {
    let runs = scenarios
        .iter()
        .map(|sc| run_scenario_with(sc, opts).map_err(|e| format!("{}: {e}", sc.name())))
        .collect::<Result<Vec<_>, _>>()?;
    Ok(SuiteManifest {
        suite: suite.to_string(),
        runs,
    })
}

/// Executes the scenario's algorithm on any [`RoundEngine`] backend —
/// the single execution path since the PR-3 step-API port retired the
/// sequential-only closures.
fn run_generic<E: RoundEngine>(eng: &mut E, sc: &Scenario) -> Result<AlgOutput, String> {
    let n = eng.graph().n();
    match sc.algorithm {
        AlgorithmSpec::LubyMis => Ok(AlgOutput::Mask(luby_mis(eng, sc.k, sc.seed))),
        AlgorithmSpec::BeepingMis => Ok(AlgOutput::Mask(beeping_mis(eng, sc.k, sc.seed))),
        AlgorithmSpec::ShatterMis { two_phase } => {
            let post = if two_phase {
                PostShattering::TwoPhase
            } else {
                PostShattering::OnePhase
            };
            let (mask, _report) = mis_power(eng, sc.k, &suite_params(), sc.seed, post)
                .map_err(|e| format!("shattering MIS failed: {e}"))?;
            Ok(AlgOutput::Mask(mask))
        }
        AlgorithmSpec::Sparsify { derandomized } => {
            let strategy = if derandomized {
                SamplingStrategy::SeedSearch
            } else {
                SamplingStrategy::Randomized { seed: sc.seed }
            };
            let out = sparsify_power(eng, sc.k, &vec![true; n], &suite_params(), strategy)
                .map_err(|e| format!("sparsify failed: {e}"))?;
            Ok(AlgOutput::Sparsifier(Box::new(out)))
        }
        AlgorithmSpec::BetaRulingSet { beta } => {
            let set = beta_ruling_set(eng, sc.k, beta, &suite_params(), sc.seed);
            Ok(AlgOutput::RulingSet {
                set,
                alpha: sc.k + 1,
                beta: sc.k * beta,
            })
        }
        AlgorithmSpec::DetRulingK2 => {
            let out = det_ruling_set_k2(eng, sc.k, &suite_params(), sc.seed);
            Ok(AlgOutput::RulingSet {
                set: out.ruling_set,
                alpha: sc.k + 1,
                beta: sc.k * sc.k,
            })
        }
        AlgorithmSpec::PowerNd => {
            let nd = power_nd(eng, sc.k, &suite_params())
                .map_err(|e| format!("network decomposition failed: {e}"))?;
            Ok(AlgOutput::Decomposition(nd))
        }
    }
}

/// Re-verifies the output with the `check` predicates; returns the
/// verdict and the output cardinality.
fn validate(g: &Graph, sc: &Scenario, output: &AlgOutput) -> (Validation, u64) {
    let k = sc.k;
    match output {
        AlgOutput::Mask(mask) => {
            let members = generators::members(mask);
            let passed = check::is_mis_of_power(g, &members, k);
            let detail = if passed {
                format!(
                    "MIS of G^{k}: independent + maximal, |S| = {}",
                    members.len()
                )
            } else {
                format!("INVALID MIS of G^{k} (|S| = {})", members.len())
            };
            (Validation { passed, detail }, members.len() as u64)
        }
        AlgOutput::RulingSet { set, alpha, beta } => {
            let passed = check::is_ruling_set(g, set, *alpha, *beta);
            let detail = if passed {
                format!(
                    "({alpha}, {beta})-ruling set: packing + covering hold, |S| = {}",
                    set.len()
                )
            } else {
                format!("INVALID ({alpha}, {beta})-ruling set (|S| = {})", set.len())
            };
            (Validation { passed, detail }, set.len() as u64)
        }
        AlgOutput::Sparsifier(out) => {
            let members = generators::members(&out.q);
            let i3 = check::satisfies_sparsifier_i3(g, k, &out.q, &out.knowledge);
            let dom_bound = k * k + k;
            let dominating = check::is_beta_dominating(g, &members, dom_bound);
            // The degree bound holds deterministically for the seed scan
            // and w.h.p. for randomized sampling, so it is recorded but
            // only the deterministic invariants gate the verdict.
            let max_deg = power::max_q_degree(g, k, &out.q);
            let target = suite_params().degree_bound(g.n());
            let passed = i3 && dominating;
            let detail = format!(
                "{}I3 {}, (k²+k)-domination {}; |Q| = {}, max d_{k}(v, Q) = {max_deg} \
                 (target ≤ {target})",
                if passed { "" } else { "INVALID: " },
                if i3 { "holds" } else { "VIOLATED" },
                if dominating { "holds" } else { "VIOLATED" },
                members.len(),
            );
            (Validation { passed, detail }, members.len() as u64)
        }
        AlgOutput::Decomposition(nd) => {
            let bound = diameter_bound(k, g.n());
            let errors = check::check_decomposition(g, &nd.view(), bound, 2 * k as u32, true);
            let passed = errors.is_empty();
            let detail = if passed {
                format!(
                    "ND of G^{k}: cover + weak diameter ≤ {bound} + separation > {} hold; \
                     {} clusters in {} colors",
                    2 * k,
                    nd.color.len(),
                    nd.num_colors
                )
            } else {
                format!("INVALID ND of G^{k}: {errors:?}")
            };
            (Validation { passed, detail }, nd.color.len() as u64)
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn record(
    sc: &Scenario,
    g: &Graph,
    metrics: &Metrics,
    wall: PhaseWall,
    wall_stats: WallStats,
    trace: Option<Vec<TraceRow>>,
    validation: Validation,
    output_size: u64,
) -> RunRecord {
    RunRecord {
        name: sc.name(),
        family: sc.family.id().to_string(),
        graph: sc.family.label(),
        n: g.n() as u64,
        m: g.m() as u64,
        max_degree: g.max_degree() as u64,
        k: sc.k as u64,
        seed: sc.seed,
        algorithm: sc.algorithm.id(),
        engine: sc.engine.id().to_string(),
        shards: sc.engine.shards() as u64,
        net: if sc.tcp || sc.net.is_some() {
            let spec = sc.net.unwrap_or_default();
            Some(NetRecord {
                tcp: sc.tcp,
                latency_us: spec.latency_us,
                bandwidth_bytes_per_s: spec.bandwidth_bytes_per_s,
                jitter_seed: spec.jitter_seed,
            })
        } else {
            None
        },
        recovery: sc.recovery.map(|r| RecoveryRecord {
            max_retries: u64::from(r.max_retries),
            backoff_ms: r.backoff_ms,
            checkpoint_every: u64::from(r.checkpoint_every),
            recoveries: metrics.recoveries,
        }),
        rounds: metrics.rounds,
        charged_rounds: metrics.charged_rounds,
        messages: metrics.messages,
        bits: metrics.bits,
        peak_queue_depth: metrics.peak_queue_depth,
        arena_cells_peak: metrics.arena_cells_peak,
        arena_bytes_peak: metrics.arena_bytes_peak,
        alloc_count: 0,
        alloc_bytes_peak: 0,
        output_size,
        wall,
        wall_stats,
        profile: None,
        trace,
        validation,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::GraphFamily;

    #[test]
    fn luby_scenario_runs_and_validates() {
        let sc = Scenario::new(GraphFamily::Grid { rows: 6, cols: 6 })
            .k(2)
            .seed(3);
        let rec = run_scenario(&sc).unwrap();
        assert!(rec.validation.passed, "{}", rec.validation.detail);
        assert_eq!(rec.n, 36);
        assert_eq!(rec.m, 60);
        assert!(rec.rounds > 0);
        assert!(rec.messages > 0);
        assert!(rec.peak_queue_depth > 0);
        assert!(rec.output_size > 0);
    }

    #[test]
    fn sparsifier_scenario_validates_i3() {
        let sc = Scenario::new(GraphFamily::Torus { rows: 8, cols: 8 }).algorithm(
            AlgorithmSpec::Sparsify {
                derandomized: false,
            },
        );
        let rec = run_scenario(&sc).unwrap();
        assert!(rec.validation.passed, "{}", rec.validation.detail);
        assert!(rec.validation.detail.contains("I3 holds"));
    }

    #[test]
    fn ruling_set_scenarios_validate() {
        let sc = Scenario::new(GraphFamily::Gnp {
            n: 96,
            avg_deg: 6.0,
        })
        .seed(5)
        .algorithm(AlgorithmSpec::BetaRulingSet { beta: 3 });
        let rec = run_scenario(&sc).unwrap();
        assert!(rec.validation.passed, "{}", rec.validation.detail);

        let sc = Scenario::new(GraphFamily::Grid { rows: 6, cols: 6 })
            .k(2)
            .algorithm(AlgorithmSpec::DetRulingK2);
        let rec = run_scenario(&sc).unwrap();
        assert!(rec.validation.passed, "{}", rec.validation.detail);
        assert_eq!(rec.algorithm, "det_ruling_k2");
    }

    #[test]
    fn formerly_rejected_combinations_now_run_sharded() {
        // Before the PR-3 port these scenario × engine pairs were spec
        // errors; now they execute on the sharded engine and validate.
        for sc in [
            Scenario::new(GraphFamily::Grid { rows: 6, cols: 6 })
                .algorithm(AlgorithmSpec::DetRulingK2)
                .sharded(2),
            Scenario::new(GraphFamily::Gnp {
                n: 72,
                avg_deg: 6.0,
            })
            .seed(9)
            .algorithm(AlgorithmSpec::BetaRulingSet { beta: 2 })
            .sharded(3),
            Scenario::new(GraphFamily::Gnp {
                n: 64,
                avg_deg: 5.0,
            })
            .seed(4)
            .algorithm(AlgorithmSpec::BeepingMis)
            .sharded(4),
            Scenario::new(GraphFamily::Gnp {
                n: 64,
                avg_deg: 5.0,
            })
            .seed(8)
            .algorithm(AlgorithmSpec::ShatterMis { two_phase: false })
            .sharded(2),
            Scenario::new(GraphFamily::Torus { rows: 6, cols: 6 })
                .k(2)
                .algorithm(AlgorithmSpec::PowerNd)
                .sharded(2),
        ] {
            let rec = run_scenario(&sc).unwrap();
            assert!(
                rec.validation.passed,
                "{}: {}",
                rec.name, rec.validation.detail
            );
            assert_eq!(rec.engine, "sharded");
        }
    }

    #[test]
    fn nd_scenario_validates_decomposition() {
        let sc = Scenario::new(GraphFamily::Grid { rows: 7, cols: 7 })
            .k(2)
            .algorithm(AlgorithmSpec::PowerNd);
        let rec = run_scenario(&sc).unwrap();
        assert!(rec.validation.passed, "{}", rec.validation.detail);
        assert!(rec.validation.detail.contains("clusters"));
        assert!(rec.output_size >= 1);
    }

    #[test]
    fn spec_errors_are_reported() {
        let sc = Scenario::new(GraphFamily::Grid { rows: 4, cols: 4 }).sharded(0);
        assert!(run_scenario(&sc).is_err());
        let mut sc = Scenario::new(GraphFamily::Grid { rows: 4, cols: 4 });
        sc.k = 0;
        assert!(run_scenario(&sc).is_err());
    }

    #[test]
    fn engines_agree_on_costs_and_output() {
        let base = Scenario::new(GraphFamily::ClusterGrid {
            rows: 3,
            cols: 3,
            cluster: 4,
        })
        .k(2)
        .seed(9);
        let seq = run_scenario(&base.clone().sequential()).unwrap();
        for par in [
            run_scenario(&base.clone().sharded(3)).unwrap(),
            run_scenario(&base.pooled(3)).unwrap(),
        ] {
            assert!(seq.validation.passed && par.validation.passed);
            assert_eq!(seq.rounds, par.rounds, "{}", par.name);
            assert_eq!(seq.messages, par.messages, "{}", par.name);
            assert_eq!(seq.bits, par.bits, "{}", par.name);
            assert_eq!(seq.peak_queue_depth, par.peak_queue_depth, "{}", par.name);
            assert_eq!(seq.output_size, par.output_size, "{}", par.name);
        }
    }

    #[test]
    fn repeated_runs_collect_wall_stats_and_keep_counters_exact() {
        let sc = Scenario::new(GraphFamily::Grid { rows: 5, cols: 5 }).seed(2);
        let opts = RunOptions {
            repeat: Repeat {
                invocations: 3,
                iterations: 2,
                warmup: 1,
            },
            trace: None,
            profile: false,
            chaos: None,
        };
        let rec = run_scenario_with(&sc, &opts).unwrap();
        assert_eq!(rec.wall_stats.samples, 3);
        assert!(rec.wall_stats.min_us <= rec.wall_stats.mean_us);
        assert!(rec.wall_stats.mean_us <= rec.wall_stats.max_us);
        assert!(rec.wall_stats.ci95_us >= 0.0);
        // Counters are the deterministic single-run values.
        let base = run_scenario(&sc).unwrap();
        assert_eq!(rec.rounds, base.rounds);
        assert_eq!(rec.messages, base.messages);
        assert_eq!(rec.bits, base.bits);
        assert_eq!(rec.arena_cells_peak, base.arena_cells_peak);
        assert_eq!(base.wall_stats.samples, 1);
        assert_eq!(base.wall_stats.mean_us, base.wall.run_us as f64);
    }

    #[test]
    fn full_trace_reconciles_with_the_counters() {
        let sc = Scenario::new(GraphFamily::Grid { rows: 5, cols: 5 })
            .seed(2)
            .pooled(3);
        let opts = RunOptions {
            repeat: Repeat::once(),
            trace: Some(0), // keep every round
            profile: false,
            chaos: None,
        };
        let rec = run_scenario_with(&sc, &opts).unwrap();
        let trace = rec.trace.as_ref().unwrap();
        assert_eq!(trace.len() as u64, rec.rounds);
        assert_eq!(trace.iter().map(|r| r.messages).sum::<u64>(), rec.messages);
        assert_eq!(trace.iter().map(|r| r.bits).sum::<u64>(), rec.bits);
        for (i, row) in trace.iter().enumerate() {
            assert_eq!(row.round, i as u64);
        }
    }

    #[test]
    fn downsampled_trace_is_bounded_and_keeps_real_round_indices() {
        let sc = Scenario::new(GraphFamily::Grid { rows: 6, cols: 6 })
            .k(2)
            .seed(3);
        let full = run_scenario_with(
            &sc,
            &RunOptions {
                repeat: Repeat::once(),
                trace: Some(0),
                profile: false,
                chaos: None,
            },
        )
        .unwrap();
        let rounds = full.rounds;
        assert!(rounds > 4, "need a multi-round run for downsampling");
        let limit = 4usize;
        let rec = run_scenario_with(
            &sc,
            &RunOptions {
                repeat: Repeat::once(),
                trace: Some(limit),
                profile: false,
                chaos: None,
            },
        )
        .unwrap();
        let trace = rec.trace.as_ref().unwrap();
        assert!(trace.len() <= limit, "{} rows > limit {limit}", trace.len());
        assert_eq!(trace[0].round, 0, "first round must survive");
        let full_rows = full.trace.as_ref().unwrap();
        for row in trace {
            assert_eq!(&full_rows[row.round as usize], row, "strided row differs");
        }
    }

    #[test]
    fn zero_repeat_counts_are_spec_errors() {
        let sc = Scenario::new(GraphFamily::Grid { rows: 4, cols: 4 });
        for repeat in [
            Repeat {
                invocations: 0,
                iterations: 1,
                warmup: 0,
            },
            Repeat {
                invocations: 1,
                iterations: 0,
                warmup: 0,
            },
        ] {
            let opts = RunOptions {
                repeat,
                trace: None,
                profile: false,
                chaos: None,
            };
            assert!(run_scenario_with(&sc, &opts).is_err());
        }
    }

    #[test]
    fn shaped_and_tcp_process_scenarios_run_and_record_the_wire() {
        use powersparse_engine::NetworkSpec;
        let base = Scenario::new(GraphFamily::Grid { rows: 6, cols: 6 })
            .seed(3)
            .process(2);
        let plain = run_scenario(&base.clone()).unwrap();
        assert!(
            plain.net.is_none(),
            "default wire must not emit a net section"
        );
        let net = NetworkSpec {
            latency_us: 15,
            bandwidth_bytes_per_s: 32 << 20,
            jitter_seed: 11,
        };
        let shaped = run_scenario(&base.clone().network(net)).unwrap();
        let tcp = run_scenario(&base.tcp()).unwrap();
        for rec in [&shaped, &tcp] {
            assert!(
                rec.validation.passed,
                "{}: {}",
                rec.name, rec.validation.detail
            );
            // The wire never touches a gated counter.
            assert_eq!(rec.rounds, plain.rounds, "{}", rec.name);
            assert_eq!(rec.messages, plain.messages, "{}", rec.name);
            assert_eq!(rec.bits, plain.bits, "{}", rec.name);
            assert_eq!(rec.peak_queue_depth, plain.peak_queue_depth, "{}", rec.name);
            assert_eq!(rec.output_size, plain.output_size, "{}", rec.name);
        }
        let section = shaped.net.expect("shaped run must record its wire");
        assert!(!section.tcp);
        assert_eq!(section.latency_us, 15);
        assert_eq!(section.bandwidth_bytes_per_s, 32 << 20);
        assert_eq!(section.jitter_seed, 11);
        assert!(shaped
            .name
            .ends_with("process2+net(lat=15us,bw=33554432,jit=11)"));
        let section = tcp.net.expect("tcp run must record its wire");
        assert!(section.tcp);
        assert_eq!(section.latency_us, 0);
        assert!(tcp.name.ends_with("process2+tcp"));
    }

    #[test]
    fn chaos_injected_process_runs_match_the_clean_baseline() {
        let sc = Scenario::new(GraphFamily::Grid { rows: 6, cols: 6 })
            .seed(3)
            .process(2);
        let clean = run_scenario(&sc).unwrap();
        assert!(
            clean.recovery.is_none(),
            "unsupervised run must not emit a recovery section"
        );
        let opts = RunOptions {
            chaos: Some(ChaosSpec::default()),
            ..RunOptions::default()
        };
        let chaotic = run_scenario_with(&sc, &opts).unwrap();
        assert!(
            chaotic.validation.passed,
            "{}: {}",
            chaotic.name, chaotic.validation.detail
        );
        // Recovery is operational: same name, same gated counters.
        assert_eq!(chaotic.name, clean.name);
        assert_eq!(chaotic.rounds, clean.rounds);
        assert_eq!(chaotic.messages, clean.messages);
        assert_eq!(chaotic.bits, clean.bits);
        assert_eq!(chaotic.peak_queue_depth, clean.peak_queue_depth);
        assert_eq!(chaotic.output_size, clean.output_size);
        // Chaos forced the default supervision and actually recovered.
        let section = chaotic.recovery.expect("chaos run records its policy");
        assert_eq!(
            section.max_retries,
            u64::from(RecoverySpec::default().max_retries)
        );
        assert!(
            section.recoveries > 0,
            "the seeded plan must fire inside the run"
        );
    }

    #[test]
    fn supervised_but_undisturbed_runs_record_zero_recoveries() {
        let sc = Scenario::new(GraphFamily::Grid { rows: 6, cols: 6 })
            .seed(3)
            .process(2)
            .recovery(RecoverySpec {
                max_retries: 2,
                backoff_ms: 1,
                checkpoint_every: 3,
            });
        let rec = run_scenario(&sc).unwrap();
        assert!(rec.validation.passed, "{}", rec.validation.detail);
        let section = rec.recovery.expect("supervised run records its policy");
        assert_eq!(section.max_retries, 2);
        assert_eq!(section.backoff_ms, 1);
        assert_eq!(section.checkpoint_every, 3);
        assert_eq!(section.recoveries, 0);
    }

    #[test]
    fn pooled_scenarios_run_and_validate() {
        for sc in [
            Scenario::new(GraphFamily::Grid { rows: 6, cols: 6 })
                .k(2)
                .seed(3)
                .pooled(4),
            Scenario::new(GraphFamily::Torus { rows: 6, cols: 6 })
                .algorithm(AlgorithmSpec::Sparsify {
                    derandomized: false,
                })
                .pooled(2),
            Scenario::new(GraphFamily::Gnp {
                n: 72,
                avg_deg: 6.0,
            })
            .seed(9)
            .algorithm(AlgorithmSpec::BetaRulingSet { beta: 2 })
            .pooled(3),
        ] {
            let rec = run_scenario(&sc).unwrap();
            assert!(
                rec.validation.passed,
                "{}: {}",
                rec.name, rec.validation.detail
            );
            assert_eq!(rec.engine, "pooled");
            assert!(rec.name.contains("/pooled"), "{}", rec.name);
        }
    }
}
