//! Manifest regression diffing (`experiments suite --diff old.json
//! new.json`): compares two [`SuiteManifest`]s field by field and flags
//! round/message/bit regressions beyond a relative tolerance.
//!
//! Runs are matched by their canonical scenario name plus seed (the
//! name omits the seed, and two runs may legally differ only there).
//! Three kinds of findings gate a diff (see [`DiffReport::clean`]):
//!
//! * **missing** — a baseline scenario disappeared from the new manifest;
//! * **reshaped** — a scenario's coordinates (graph shape, `k`, seed,
//!   algorithm, engine) changed, so its counters measure something else;
//! * **regressions** — a cost counter grew beyond the tolerance, or a
//!   run's validation flipped from passed to failed.
//!
//! Improvements and newly added runs are reported but never gate.
//! Wall clock is held to a *statistical* standard instead of the exact
//! one: a single measurement varies per machine, so `wall_stats` gates
//! only when both sides carry repeat-run statistics (≥ 2 samples) and
//! their 95% confidence intervals are disjoint with the new mean above
//! the old — evidence of a real slowdown, not noise. Arena footprint
//! gauges (`arena_cells_peak`/`arena_bytes_peak`) are reported but not
//! gated here: old manifests default them to zero, and the conformance
//! suite already pins them engine-invariant.
//!
//! [`DiffOptions::ignore_engine`] turns the diff into a **cross-engine
//! conformance gate**: runs are matched modulo the engine backend and
//! shard count (which the engine contract says cannot affect any gated
//! counter), so a manifest produced by `suite --force-engine pooled` can
//! be compared field by field against the committed mixed-engine
//! baseline — CI gates the pooled backend this way.

use crate::manifest::{RunRecord, SuiteManifest};
use std::borrow::Cow;
use std::collections::BTreeMap;
use std::fmt;

/// The cost counters compared per run, as `(label, accessor)` pairs.
/// `validation.passed` is handled separately (a flip to failed is always
/// a regression, regardless of tolerance).
const COUNTERS: [(&str, fn(&RunRecord) -> u64); 6] = [
    ("rounds", |r| r.rounds),
    ("charged_rounds", |r| r.charged_rounds),
    ("messages", |r| r.messages),
    ("bits", |r| r.bits),
    ("peak_queue_depth", |r| r.peak_queue_depth),
    ("output_size", |r| r.output_size),
];

/// One counter change between the baseline and the new manifest.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FieldChange {
    /// Canonical scenario name.
    pub run: String,
    /// Which counter changed.
    pub field: &'static str,
    /// Baseline value.
    pub old: u64,
    /// New value.
    pub new: u64,
}

impl FieldChange {
    /// Relative growth `new/old − 1` (`+∞` when the baseline was 0).
    pub fn relative(&self) -> f64 {
        if self.old == 0 {
            if self.new == 0 {
                0.0
            } else {
                f64::INFINITY
            }
        } else {
            self.new as f64 / self.old as f64 - 1.0
        }
    }
}

impl fmt::Display for FieldChange {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {} {} -> {} ({:+.1}%)",
            self.run,
            self.field,
            self.old,
            self.new,
            100.0 * self.relative()
        )
    }
}

/// A scenario-coordinate mismatch: the run exists under the same name
/// but no longer measures the same experiment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShapeChange {
    /// Canonical scenario name.
    pub run: String,
    /// Which coordinate changed.
    pub field: &'static str,
    /// Baseline value.
    pub old: String,
    /// New value.
    pub new: String,
}

/// How a manifest comparison is performed.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct DiffOptions {
    /// Relative slack on every cost counter: a counter regresses when
    /// `new > old · (1 + tolerance)` and improves when
    /// `new < old · (1 − tolerance)`. Validation verdicts ignore it.
    pub tolerance: f64,
    /// Match runs modulo engine backend and shard count (the engine
    /// contract makes every gated counter identical across backends),
    /// and skip the `engine`/`shards` shape fields.
    pub ignore_engine: bool,
}

/// The outcome of [`diff_manifests`].
#[derive(Debug, Clone, Default)]
pub struct DiffReport {
    /// Relative tolerance the comparison ran with.
    pub tolerance: f64,
    /// Whether runs were matched modulo engine backend.
    pub ignore_engine: bool,
    /// Baseline runs absent from the new manifest (gating).
    pub missing: Vec<String>,
    /// Runs present only in the new manifest (informational).
    pub added: Vec<String>,
    /// Scenario-coordinate changes (gating; counters are not compared
    /// for a reshaped run).
    pub reshaped: Vec<ShapeChange>,
    /// Counter growth beyond tolerance and validation passed→failed
    /// flips (gating).
    pub regressions: Vec<FieldChange>,
    /// Counter reductions beyond tolerance and validation failed→passed
    /// flips (informational).
    pub improvements: Vec<FieldChange>,
    /// Runs compared with every counter within tolerance.
    pub unchanged: usize,
}

impl DiffReport {
    /// Whether the diff gates clean: nothing missing, nothing reshaped,
    /// no regression.
    pub fn clean(&self) -> bool {
        self.missing.is_empty() && self.reshaped.is_empty() && self.regressions.is_empty()
    }
}

impl fmt::Display for DiffReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "suite diff (tolerance {:.1}%{}): {} unchanged, {} regression(s), \
             {} improvement(s), {} missing, {} reshaped, {} added",
            100.0 * self.tolerance,
            if self.ignore_engine {
                ", engines ignored"
            } else {
                ""
            },
            self.unchanged,
            self.regressions.len(),
            self.improvements.len(),
            self.missing.len(),
            self.reshaped.len(),
            self.added.len(),
        )?;
        for name in &self.missing {
            writeln!(f, "  MISSING   {name}")?;
        }
        for s in &self.reshaped {
            writeln!(
                f,
                "  RESHAPED  {}: {} `{}` -> `{}`",
                s.run, s.field, s.old, s.new
            )?;
        }
        for c in &self.regressions {
            writeln!(f, "  REGRESSED {c}")?;
        }
        for c in &self.improvements {
            writeln!(f, "  improved  {c}")?;
        }
        for name in &self.added {
            writeln!(f, "  added     {name}")?;
        }
        Ok(())
    }
}

/// The scenario coordinates that must match before counters are
/// comparable. The seed is part of the match *key* (two scenarios may
/// legally share a name and differ only in seed), not a shape field.
/// With `ignore_engine` the `engine`/`shards` coordinates are exempt —
/// the engine contract guarantees they cannot change any gated counter.
fn shape_fields(r: &RunRecord, ignore_engine: bool) -> Vec<(&'static str, String)> {
    let mut fields = vec![
        ("family", r.family.clone()),
        ("graph", r.graph.clone()),
        ("n", r.n.to_string()),
        ("m", r.m.to_string()),
        ("k", r.k.to_string()),
        ("algorithm", r.algorithm.clone()),
    ];
    if !ignore_engine {
        fields.push(("engine", r.engine.clone()));
        fields.push(("shards", r.shards.to_string()));
    }
    fields
}

/// The run-matching key: the canonical scenario name does not embed the
/// seed, so same-named runs with different seeds are distinct scenarios
/// and must match only each other. With `ignore_engine` the engine
/// suffix is dropped from the name, so the same experiment matches
/// across backends.
fn key(r: &RunRecord, ignore_engine: bool) -> (Cow<'_, str>, u64) {
    let name = if ignore_engine {
        Cow::Owned(format!("{}/k{}/{}", r.graph, r.k, r.algorithm))
    } else {
        Cow::Borrowed(r.name.as_str())
    };
    (name, r.seed)
}

/// Renders a key for the report lists.
fn key_label(r: &RunRecord) -> String {
    format!("{} (seed {})", r.name, r.seed)
}

/// Compares `new` against the `old` baseline, run by run and field by
/// field, with the given relative counter tolerance. Shorthand for
/// [`diff_manifests_with`] without the engine-agnostic matching.
pub fn diff_manifests(old: &SuiteManifest, new: &SuiteManifest, tolerance: f64) -> DiffReport {
    diff_manifests_with(
        old,
        new,
        DiffOptions {
            tolerance,
            ignore_engine: false,
        },
    )
}

/// Compares `new` against the `old` baseline, run by run and field by
/// field, under [`DiffOptions`].
pub fn diff_manifests_with(
    old: &SuiteManifest,
    new: &SuiteManifest,
    opts: DiffOptions,
) -> DiffReport {
    assert!(opts.tolerance >= 0.0, "tolerance must be non-negative");
    let mut report = DiffReport {
        tolerance: opts.tolerance,
        ignore_engine: opts.ignore_engine,
        ..DiffReport::default()
    };
    // Group by key, keeping duplicates: a spec may legally list the
    // same scenario several times, and every occurrence must be
    // compared (pairing them in manifest order).
    fn group(
        m: &SuiteManifest,
        ignore_engine: bool,
    ) -> BTreeMap<(Cow<'_, str>, u64), Vec<&RunRecord>> {
        let mut by_key: BTreeMap<(Cow<'_, str>, u64), Vec<&RunRecord>> = BTreeMap::new();
        for r in &m.runs {
            by_key.entry(key(r, ignore_engine)).or_default().push(r);
        }
        by_key
    }
    let old_by_key = group(old, opts.ignore_engine);
    let new_by_key = group(new, opts.ignore_engine);
    for (k, runs) in &new_by_key {
        let matched = old_by_key.get(k).map_or(0, Vec::len);
        for r in runs.iter().skip(matched) {
            report.added.push(key_label(r));
        }
    }

    for (k, old_runs) in &old_by_key {
        let new_runs = new_by_key.get(k).map(Vec::as_slice).unwrap_or(&[]);
        for (i, o) in old_runs.iter().copied().enumerate() {
            let Some(n) = new_runs.get(i).copied() else {
                report.missing.push(key_label(o));
                continue;
            };
            compare_run(o, n, opts, &mut report);
        }
    }
    report
}

/// Compares one matched run pair and records the findings.
fn compare_run(o: &RunRecord, n: &RunRecord, opts: DiffOptions, report: &mut DiffReport) {
    let tolerance = opts.tolerance;
    let old_shape = shape_fields(o, opts.ignore_engine);
    let new_shape = shape_fields(n, opts.ignore_engine);
    let mut reshaped = false;
    for ((field, ov), (_, nv)) in old_shape.into_iter().zip(new_shape) {
        if ov != nv {
            reshaped = true;
            report.reshaped.push(ShapeChange {
                run: key_label(o),
                field,
                old: ov,
                new: nv,
            });
        }
    }
    if reshaped {
        return;
    }
    let mut changed = false;
    if o.validation.passed != n.validation.passed {
        changed = true;
        let change = FieldChange {
            run: key_label(o),
            field: "validation.passed",
            old: u64::from(o.validation.passed),
            new: u64::from(n.validation.passed),
        };
        if o.validation.passed {
            report.regressions.push(change);
        } else {
            report.improvements.push(change);
        }
    }
    for (field, get) in COUNTERS {
        let (ov, nv) = (get(o), get(n));
        let change = FieldChange {
            run: key_label(o),
            field,
            old: ov,
            new: nv,
        };
        if nv as f64 > ov as f64 * (1.0 + tolerance) {
            changed = true;
            report.regressions.push(change);
        } else if (nv as f64) < ov as f64 * (1.0 - tolerance) && nv != ov {
            changed = true;
            report.improvements.push(change);
        }
    }
    // Wall clock gates only on statistical evidence: both runs must
    // carry repeat statistics and the 95% confidence intervals must be
    // disjoint. Single-sample runs never gate on wall clock.
    if o.wall_stats.samples >= 2 && n.wall_stats.samples >= 2 {
        let (old_lo, old_hi) = o.wall_stats.interval();
        let (new_lo, new_hi) = n.wall_stats.interval();
        let change = FieldChange {
            run: key_label(o),
            field: "wall_stats.mean_us",
            old: o.wall_stats.mean_us as u64,
            new: n.wall_stats.mean_us as u64,
        };
        if n.wall_stats.mean_us > o.wall_stats.mean_us && new_lo > old_hi {
            changed = true;
            report.regressions.push(change);
        } else if n.wall_stats.mean_us < o.wall_stats.mean_us && new_hi < old_lo {
            changed = true;
            report.improvements.push(change);
        }
    }
    if !changed {
        report.unchanged += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::manifest::{PhaseWall, Validation, WallStats};

    fn record(name: &str, rounds: u64, messages: u64, bits: u64) -> RunRecord {
        RunRecord {
            name: name.into(),
            family: "gnp".into(),
            graph: "gnp(n=100,d=6)".into(),
            n: 100,
            m: 300,
            max_degree: 12,
            k: 1,
            seed: 42,
            algorithm: "luby_mis".into(),
            engine: "sequential".into(),
            shards: 1,
            net: None,
            recovery: None,
            rounds,
            charged_rounds: 0,
            messages,
            bits,
            peak_queue_depth: 3,
            arena_cells_peak: 140,
            arena_bytes_peak: 4480,
            alloc_count: 0,
            alloc_bytes_peak: 0,
            output_size: 30,
            wall: PhaseWall {
                build_us: 10,
                run_us: 500,
                validate_us: 20,
            },
            wall_stats: WallStats::single(500),
            profile: None,
            trace: None,
            validation: Validation {
                passed: true,
                detail: "ok".into(),
            },
        }
    }

    fn manifest(runs: Vec<RunRecord>) -> SuiteManifest {
        SuiteManifest {
            suite: "t".into(),
            runs,
        }
    }

    #[test]
    fn identical_manifests_are_clean() {
        let m = manifest(vec![record("a", 10, 100, 1000), record("b", 20, 200, 2000)]);
        let report = diff_manifests(&m, &m, 0.0);
        assert!(report.clean());
        assert_eq!(report.unchanged, 2);
        assert!(report.regressions.is_empty());
        assert!(report.improvements.is_empty());
    }

    #[test]
    fn counter_growth_is_a_regression_and_shrink_an_improvement() {
        let old = manifest(vec![record("a", 10, 100, 1000)]);
        let new = manifest(vec![record("a", 12, 90, 1000)]);
        let report = diff_manifests(&old, &new, 0.0);
        assert!(!report.clean());
        assert_eq!(report.regressions.len(), 1);
        assert_eq!(report.regressions[0].field, "rounds");
        assert_eq!(
            (report.regressions[0].old, report.regressions[0].new),
            (10, 12)
        );
        assert!((report.regressions[0].relative() - 0.2).abs() < 1e-9);
        assert_eq!(report.improvements.len(), 1);
        assert_eq!(report.improvements[0].field, "messages");
        assert_eq!(report.unchanged, 0);
    }

    #[test]
    fn tolerance_absorbs_small_drift() {
        let old = manifest(vec![record("a", 100, 1000, 10000)]);
        let new = manifest(vec![record("a", 109, 1090, 10900)]);
        // 9% growth: regression at 5% tolerance, clean at 10%.
        let tight = diff_manifests(&old, &new, 0.05);
        assert_eq!(tight.regressions.len(), 3);
        let loose = diff_manifests(&old, &new, 0.10);
        assert!(loose.clean(), "{loose}");
        assert_eq!(loose.unchanged, 1);
        assert!(loose.improvements.is_empty());
    }

    #[test]
    fn validation_flip_gates_regardless_of_tolerance() {
        let old = manifest(vec![record("a", 10, 100, 1000)]);
        let mut bad = record("a", 10, 100, 1000);
        bad.validation.passed = false;
        let new = manifest(vec![bad]);
        let report = diff_manifests(&old, &new, 10.0);
        assert!(!report.clean());
        assert_eq!(report.regressions[0].field, "validation.passed");
    }

    #[test]
    fn missing_added_and_reshaped_runs_are_flagged() {
        let old = manifest(vec![record("a", 10, 100, 1000), record("b", 20, 200, 2000)]);
        let mut c = record("a", 10, 100, 1000);
        c.n = 128; // same name, different graph shape
        let new = manifest(vec![c, record("d", 1, 1, 1)]);
        let report = diff_manifests(&old, &new, 0.0);
        assert_eq!(report.missing, vec!["b (seed 42)".to_string()]);
        assert_eq!(report.added, vec!["d (seed 42)".to_string()]);
        assert_eq!(report.reshaped.len(), 1);
        assert_eq!(report.reshaped[0].field, "n");
        assert!(!report.clean());
        // A reshaped run's counters are not compared.
        assert!(report.regressions.is_empty());
    }

    #[test]
    fn same_name_different_seed_runs_match_separately() {
        // Scenario names omit the seed, so a manifest may legally hold
        // two same-named runs differing only in seed; each must match
        // its own counterpart (and a self-diff stays clean).
        let mut s5 = record("a", 10, 100, 1000);
        s5.seed = 5;
        let mut s9 = record("a", 30, 300, 3000);
        s9.seed = 9;
        let m = manifest(vec![s5.clone(), s9.clone()]);
        let report = diff_manifests(&m, &m, 0.0);
        assert!(report.clean(), "{report}");
        assert_eq!(report.unchanged, 2);

        // Dropping one duplicate is reported missing, not absorbed.
        let report = diff_manifests(&m, &manifest(vec![s5]), 0.0);
        assert_eq!(report.missing, vec!["a (seed 9)".to_string()]);
        assert_eq!(report.unchanged, 1);
    }

    #[test]
    fn exact_duplicate_runs_all_compared() {
        // run_suite does not dedupe: a spec may list the identical
        // scenario twice. Every occurrence must be compared (in
        // manifest order), so a regression in one of them cannot hide
        // behind its clean twin.
        let old = manifest(vec![record("a", 10, 100, 1000), record("a", 10, 100, 1000)]);
        let new = manifest(vec![record("a", 50, 100, 1000), record("a", 10, 100, 1000)]);
        let report = diff_manifests(&old, &new, 0.0);
        assert_eq!(report.regressions.len(), 1, "{report}");
        assert_eq!(report.regressions[0].field, "rounds");
        assert_eq!(report.unchanged, 1);

        // A deleted duplicate is missing, an extra one is added.
        let report = diff_manifests(&old, &manifest(vec![record("a", 10, 100, 1000)]), 0.0);
        assert_eq!(report.missing.len(), 1);
        let report = diff_manifests(&manifest(vec![record("a", 10, 100, 1000)]), &old, 0.0);
        assert_eq!(report.added.len(), 1);
        assert!(report.clean());
    }

    #[test]
    fn zero_baseline_counter_growth_is_infinite_regression() {
        let mut o = record("a", 10, 100, 1000);
        o.charged_rounds = 0;
        let mut n = o.clone();
        n.charged_rounds = 5;
        let report = diff_manifests(&manifest(vec![o]), &manifest(vec![n]), 0.5);
        assert_eq!(report.regressions.len(), 1);
        assert_eq!(report.regressions[0].field, "charged_rounds");
        assert!(report.regressions[0].relative().is_infinite());
    }

    #[test]
    fn tolerance_boundary_is_exclusive() {
        // Growth exactly at `old · (1 + tolerance)` is within tolerance
        // (the gate is strict `>`), and shrink exactly at
        // `old · (1 − tolerance)` is likewise not an improvement.
        let old = manifest(vec![record("a", 100, 1000, 10000)]);
        let at_boundary = manifest(vec![record("a", 110, 900, 10000)]);
        let report = diff_manifests(&old, &at_boundary, 0.10);
        assert!(report.clean(), "{report}");
        assert!(report.improvements.is_empty(), "{report}");
        assert_eq!(report.unchanged, 1);
        // One past the boundary gates.
        let past = manifest(vec![record("a", 111, 1000, 10000)]);
        let report = diff_manifests(&old, &past, 0.10);
        assert_eq!(report.regressions.len(), 1, "{report}");
        // And one under it is an improvement.
        let under = manifest(vec![record("a", 100, 899, 10000)]);
        let report = diff_manifests(&old, &under, 0.10);
        assert!(report.clean());
        assert_eq!(report.improvements.len(), 1, "{report}");
    }

    #[test]
    fn empty_manifests_are_handled() {
        let empty = manifest(vec![]);
        let full = manifest(vec![record("a", 10, 100, 1000)]);
        // Empty vs empty: trivially clean, nothing compared.
        let report = diff_manifests(&empty, &empty, 0.0);
        assert!(report.clean(), "{report}");
        assert_eq!(report.unchanged, 0);
        // Empty baseline: everything is merely added, still clean.
        let report = diff_manifests(&empty, &full, 0.0);
        assert!(report.clean(), "{report}");
        assert_eq!(report.added, vec!["a (seed 42)".to_string()]);
        // Empty new manifest against a real baseline gates.
        let report = diff_manifests(&full, &empty, 0.0);
        assert!(!report.clean());
        assert_eq!(report.missing, vec!["a (seed 42)".to_string()]);
    }

    #[test]
    fn duplicate_runs_pair_in_manifest_order() {
        // Two occurrences in the baseline, three in the new manifest:
        // the first two pair positionally, the third is added — and a
        // regression in the *second* occurrence is attributed there,
        // not hidden by the clean first one.
        let old = manifest(vec![record("a", 10, 100, 1000), record("a", 10, 100, 1000)]);
        let new = manifest(vec![
            record("a", 10, 100, 1000),
            record("a", 99, 100, 1000),
            record("a", 10, 100, 1000),
        ]);
        let report = diff_manifests(&old, &new, 0.0);
        assert_eq!(report.added.len(), 1, "{report}");
        assert_eq!(report.regressions.len(), 1, "{report}");
        assert_eq!(
            (report.regressions[0].old, report.regressions[0].new),
            (10, 99)
        );
        assert_eq!(report.unchanged, 1);
        assert!(!report.clean());
    }

    #[test]
    fn ignore_engine_matches_runs_across_backends() {
        // The cross-engine conformance gate: the same experiment run on
        // a different backend (different name suffix, engine and shard
        // coordinates) matches its baseline and compares clean when the
        // counters are identical — the engine contract made executable.
        let old = manifest(vec![record("g/k1/luby_mis/sequential", 10, 100, 1000)]);
        let mut pooled = record("g/k1/luby_mis/pooled4", 10, 100, 1000);
        pooled.engine = "pooled".into();
        pooled.shards = 4;
        let new = manifest(vec![pooled.clone()]);
        // Engine-strict: nothing matches.
        let strict = diff_manifests(&old, &new, 0.0);
        assert_eq!(strict.missing.len(), 1);
        assert_eq!(strict.added.len(), 1);
        // Engine-agnostic: matched, compared, clean.
        let opts = DiffOptions {
            tolerance: 0.0,
            ignore_engine: true,
        };
        let agnostic = diff_manifests_with(&old, &new, opts);
        assert!(agnostic.clean(), "{agnostic}");
        assert_eq!(agnostic.unchanged, 1);
        assert!(agnostic.to_string().contains("engines ignored"));
        // A counter divergence across engines still gates — that is the
        // whole point of the conformance diff.
        pooled.messages = 150;
        let report = diff_manifests_with(&old, &manifest(vec![pooled]), opts);
        assert_eq!(report.regressions.len(), 1, "{report}");
        assert_eq!(report.regressions[0].field, "messages");
    }

    #[test]
    fn single_sample_wall_clock_never_gates() {
        // The pre-statistics behavior: plain runs carry one sample each,
        // so even a 100× slowdown is not gated — it is indistinguishable
        // from machine noise.
        let old = manifest(vec![record("a", 10, 100, 1000)]);
        let mut slow = record("a", 10, 100, 1000);
        slow.wall.run_us = 50_000;
        slow.wall_stats = WallStats::single(50_000);
        let report = diff_manifests(&old, &manifest(vec![slow]), 0.0);
        assert!(report.clean(), "{report}");
        assert_eq!(report.unchanged, 1);
    }

    #[test]
    fn disjoint_confidence_intervals_gate_wall_clock() {
        let mut o = record("a", 10, 100, 1000);
        o.wall_stats = WallStats::from_samples(&[100.0, 102.0, 98.0]);
        let mut n = o.clone();
        n.wall_stats = WallStats::from_samples(&[200.0, 202.0, 198.0]);
        let report = diff_manifests(&manifest(vec![o.clone()]), &manifest(vec![n]), 0.0);
        assert!(!report.clean(), "{report}");
        assert_eq!(report.regressions.len(), 1);
        assert_eq!(report.regressions[0].field, "wall_stats.mean_us");
        assert_eq!(
            (report.regressions[0].old, report.regressions[0].new),
            (100, 200)
        );

        // The mirror image is an improvement, never a gate.
        let mut fast = o.clone();
        fast.wall_stats = WallStats::from_samples(&[50.0, 52.0, 48.0]);
        let report = diff_manifests(&manifest(vec![o]), &manifest(vec![fast]), 0.0);
        assert!(report.clean(), "{report}");
        assert_eq!(report.improvements.len(), 1);
        assert_eq!(report.improvements[0].field, "wall_stats.mean_us");
    }

    #[test]
    fn overlapping_confidence_intervals_do_not_gate() {
        // Noisy measurements whose CIs overlap: a mean shift alone is
        // not evidence of a regression.
        let mut o = record("a", 10, 100, 1000);
        o.wall_stats = WallStats::from_samples(&[100.0, 200.0, 150.0]);
        let mut n = o.clone();
        n.wall_stats = WallStats::from_samples(&[160.0, 260.0, 210.0]);
        let (old_lo, old_hi) = o.wall_stats.interval();
        let (new_lo, new_hi) = n.wall_stats.interval();
        assert!(
            new_lo < old_hi,
            "fixture must overlap: {new_lo} vs {old_hi}"
        );
        assert!(old_lo < new_hi);
        let report = diff_manifests(&manifest(vec![o]), &manifest(vec![n]), 0.0);
        assert!(report.clean(), "{report}");
        assert_eq!(report.unchanged, 1);
        assert!(report.improvements.is_empty());
    }

    #[test]
    fn report_renders_human_readably() {
        let old = manifest(vec![record("a", 10, 100, 1000)]);
        let new = manifest(vec![record("a", 20, 100, 1000)]);
        let text = diff_manifests(&old, &new, 0.0).to_string();
        assert!(
            text.contains("REGRESSED a (seed 42): rounds 10 -> 20 (+100.0%)"),
            "{text}"
        );
        assert!(text.contains("1 regression(s)"), "{text}");
    }
}
