//! Stage-level time attribution: turns the raw per-round, per-shard
//! spans a [`SpanProbe`] gathered into (a) the aggregated
//! [`ProfileStats`] manifest section, (b) the per-stage × per-shard
//! breakdown the `experiments profile` table renders, and (c) a Chrome
//! trace-event document (one Perfetto track per shard, counter tracks
//! for active edges and arena cells).
//!
//! Span *timings* are machine-shaped wall-clock measurements — nothing
//! here is conformance-gated or diffed across runs (the span
//! *structure* is; see `powersparse_congest::probe`). The numbers exist
//! to answer the ROADMAP's scheduling questions: how much of a round is
//! barrier wait, and how unbalanced the shards are, in the shattering
//! regime where activity collapses onto tiny components.

use crate::json::Json;
use crate::manifest::ProfileStats;
use powersparse_congest::probe::SpanProbe;

/// One shard's totals across a profiled run, in microseconds (averaged
/// over repeats).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ShardProfile {
    /// Shard index.
    pub shard: usize,
    /// Total step time, microseconds.
    pub step_us: f64,
    /// Total transfer/splice time, microseconds.
    pub transfer_us: f64,
    /// Total barrier-wait time, microseconds (0 on the sequential
    /// engine).
    pub barrier_us: f64,
}

impl ShardProfile {
    /// The shard's total attributed time (busy + wait).
    pub fn total_us(&self) -> f64 {
        self.step_us + self.transfer_us + self.barrier_us
    }
}

/// The per-stage × per-shard breakdown of one or more profiled runs of
/// the same scenario.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ProfileBreakdown {
    /// One entry per shard, in shard order.
    pub shards: Vec<ShardProfile>,
    /// Rounds observed (charged rounds included; they contribute no
    /// time).
    pub rounds: u64,
    /// The aggregated manifest section.
    pub stats: ProfileStats,
}

/// Aggregates one or more [`SpanProbe`]s (repeats of the same scenario)
/// into the per-shard breakdown. Per-shard times are averaged over the
/// probes; the imbalance metric is max/mean of the per-shard step
/// totals, and the barrier share is the barrier fraction of all
/// attributed time.
pub fn breakdown(probes: &[SpanProbe]) -> ProfileBreakdown {
    assert!(!probes.is_empty(), "need at least one profiled run");
    let shards = probes
        .iter()
        .flat_map(|p| p.spans.iter().map(|s| s.shards()))
        .max()
        .unwrap_or(0);
    let mut step = vec![0.0f64; shards];
    let mut transfer = vec![0.0f64; shards];
    let mut barrier = vec![0.0f64; shards];
    for probe in probes {
        for spans in &probe.spans {
            for w in 0..spans.shards() {
                step[w] += spans.step_ns[w] as f64;
                transfer[w] += spans.transfer_ns[w] as f64;
                if let Some(&b) = spans.barrier_ns.get(w) {
                    barrier[w] += b as f64;
                }
            }
        }
    }
    let scale = 1.0 / (1000.0 * probes.len() as f64); // ns → µs, mean over repeats
    let shards: Vec<ShardProfile> = (0..shards)
        .map(|w| ShardProfile {
            shard: w,
            step_us: step[w] * scale,
            transfer_us: transfer[w] * scale,
            barrier_us: barrier[w] * scale,
        })
        .collect();
    let step_total: f64 = shards.iter().map(|s| s.step_us).sum();
    let transfer_total: f64 = shards.iter().map(|s| s.transfer_us).sum();
    let barrier_total: f64 = shards.iter().map(|s| s.barrier_us).sum();
    let step_max = shards.iter().map(|s| s.step_us).fold(0.0, f64::max);
    let step_mean = step_total / (shards.len().max(1) as f64);
    let attributed = step_total + transfer_total + barrier_total;
    let stats = ProfileStats {
        shards: shards.len() as u64,
        step_us: step_total,
        transfer_us: transfer_total,
        barrier_us: barrier_total,
        imbalance: if step_mean > 0.0 {
            step_max / step_mean
        } else {
            0.0
        },
        barrier_share: if attributed > 0.0 {
            barrier_total / attributed
        } else {
            0.0
        },
    };
    ProfileBreakdown {
        shards,
        rounds: probes[0].spans.len() as u64,
        stats,
    }
}

/// The aggregated manifest section of one or more profiled runs —
/// [`breakdown`] with the per-shard table dropped.
pub fn profile_stats(probes: &[SpanProbe]) -> ProfileStats {
    breakdown(probes).stats
}

/// Renders one profiled run as a Chrome trace-event document (the JSON
/// Perfetto and `chrome://tracing` load): an object with a
/// `traceEvents` array holding one complete (`"X"`) event per stage per
/// shard per round on a per-shard track (`tid` = shard), plus
/// `active_edges` / `arena_cells` counter (`"C"`) tracks and
/// `thread_name` metadata.
///
/// The spans carry durations, not absolute timestamps, so the timeline
/// is synthetic: rounds are laid out back to back, each spanning the
/// slowest shard's attributed time, and within a round every shard runs
/// `step → transfer → barrier_wait` from the round's start. Timestamps
/// are microseconds (the trace-event convention).
pub fn chrome_trace(probe: &SpanProbe, scenario: &str) -> Json {
    let mut events: Vec<Json> = Vec::new();
    let shards = probe.spans.iter().map(|s| s.shards()).max().unwrap_or(0);
    events.push(meta_event("process_name", 0, scenario));
    for w in 0..shards {
        events.push(meta_event("thread_name", w, &format!("shard {w}")));
    }
    let mut cursor = 0.0f64; // µs since the synthetic origin
    for (i, spans) in probe.spans.iter().enumerate() {
        let round = spans.round;
        let mut round_span = 0.0f64;
        for w in 0..spans.shards() {
            let step = spans.step_ns[w] as f64 / 1000.0;
            let transfer = spans.transfer_ns[w] as f64 / 1000.0;
            let barrier = spans.barrier_ns.get(w).map_or(0.0, |&b| b as f64 / 1000.0);
            events.push(span_event("step", w, cursor, step, round));
            events.push(span_event("transfer", w, cursor + step, transfer, round));
            if spans.barrier_ns.get(w).is_some() {
                events.push(span_event(
                    "barrier_wait",
                    w,
                    cursor + step + transfer,
                    barrier,
                    round,
                ));
            }
            round_span = round_span.max(step + transfer + barrier);
        }
        if let Some(obs) = probe.rounds.get(i) {
            events.push(counter_event("active_edges", cursor, obs.active_edges));
        }
        let cells: u64 = spans.arena_cells.iter().sum();
        events.push(counter_event("arena_cells", cursor, cells));
        // Keep charged/quiet rounds visible as nonzero ticks.
        cursor += round_span.max(0.001);
    }
    Json::Obj(vec![
        ("traceEvents".into(), Json::Arr(events)),
        ("displayTimeUnit".into(), Json::str("ms")),
    ])
}

fn meta_event(name: &str, tid: usize, value: &str) -> Json {
    Json::Obj(vec![
        ("name".into(), Json::str(name)),
        ("ph".into(), Json::str("M")),
        ("pid".into(), Json::num(1)),
        ("tid".into(), Json::num(tid as u64)),
        (
            "args".into(),
            Json::Obj(vec![("name".into(), Json::str(value))]),
        ),
    ])
}

fn span_event(name: &str, tid: usize, ts_us: f64, dur_us: f64, round: u64) -> Json {
    Json::Obj(vec![
        ("name".into(), Json::str(name)),
        ("ph".into(), Json::str("X")),
        ("pid".into(), Json::num(1)),
        ("tid".into(), Json::num(tid as u64)),
        ("ts".into(), Json::Num(ts_us)),
        ("dur".into(), Json::Num(dur_us)),
        (
            "args".into(),
            Json::Obj(vec![("round".into(), Json::num(round))]),
        ),
    ])
}

fn counter_event(name: &str, ts_us: f64, value: u64) -> Json {
    Json::Obj(vec![
        ("name".into(), Json::str(name)),
        ("ph".into(), Json::str("C")),
        ("pid".into(), Json::num(1)),
        ("tid".into(), Json::num(0)),
        ("ts".into(), Json::Num(ts_us)),
        (
            "args".into(),
            Json::Obj(vec![(name.to_string(), Json::num(value))]),
        ),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use powersparse_congest::probe::{RoundObs, RoundSpans};

    fn two_shard_probe() -> SpanProbe {
        let mut p = SpanProbe::new();
        p.rounds.push(RoundObs {
            round: 0,
            active_edges: 4,
            dirty_nodes: 2,
            messages: 3,
            bits: 24,
            shard_splice: vec![2, 1],
        });
        p.spans.push(RoundSpans {
            round: 0,
            step_ns: vec![3000, 1000],
            transfer_ns: vec![500, 500],
            barrier_ns: vec![0, 2000],
            arena_cells: vec![2, 1],
        });
        p.rounds.push(RoundObs::charged(1));
        p.spans.push(RoundSpans::charged(1));
        p
    }

    #[test]
    fn breakdown_aggregates_per_shard_totals_and_metrics() {
        let b = breakdown(&[two_shard_probe()]);
        assert_eq!(b.rounds, 2);
        assert_eq!(b.shards.len(), 2);
        assert_eq!(b.shards[0].step_us, 3.0);
        assert_eq!(b.shards[1].step_us, 1.0);
        assert_eq!(b.shards[0].barrier_us, 0.0);
        assert_eq!(b.shards[1].barrier_us, 2.0);
        assert_eq!(b.stats.shards, 2);
        assert_eq!(b.stats.step_us, 4.0);
        assert_eq!(b.stats.transfer_us, 1.0);
        assert_eq!(b.stats.barrier_us, 2.0);
        // max/mean of [3, 1] = 3 / 2
        assert!((b.stats.imbalance - 1.5).abs() < 1e-12);
        // 2 of 7 attributed µs waited at a barrier.
        assert!((b.stats.barrier_share - 2.0 / 7.0).abs() < 1e-12);
    }

    #[test]
    fn breakdown_averages_over_repeats() {
        let a = two_shard_probe();
        let mut b = two_shard_probe();
        b.spans[0].step_ns = vec![5000, 3000];
        let agg = breakdown(&[a, b]);
        assert_eq!(agg.shards[0].step_us, 4.0);
        assert_eq!(agg.shards[1].step_us, 2.0);
        // Transfer identical in both repeats: mean = single value.
        assert_eq!(agg.stats.transfer_us, 1.0);
    }

    #[test]
    fn sequential_probe_has_no_barrier_and_unit_imbalance() {
        let mut p = SpanProbe::new();
        p.rounds.push(RoundObs::charged(0));
        p.spans.push(RoundSpans {
            round: 0,
            step_ns: vec![4000],
            transfer_ns: vec![1000],
            barrier_ns: Vec::new(),
            arena_cells: vec![3],
        });
        let b = breakdown(&[p]);
        assert_eq!(b.stats.shards, 1);
        assert_eq!(b.stats.barrier_us, 0.0);
        assert_eq!(b.stats.barrier_share, 0.0);
        assert!((b.stats.imbalance - 1.0).abs() < 1e-12);
    }

    #[test]
    fn chrome_trace_round_trips_and_is_well_formed() {
        let probe = two_shard_probe();
        let doc = chrome_trace(&probe, "smoke/profile");
        // Exact writer → parser round trip (the CI gate re-parses the
        // emitted file the same way).
        let text = doc.to_string_pretty();
        let back = Json::parse(&text).unwrap();
        assert_eq!(back, doc);
        assert_eq!(back.to_string_pretty(), text);

        let events = back.get("traceEvents").and_then(Json::as_arr).unwrap();
        // 1 process_name + 2 thread_name metadata, 2×3 stage spans for
        // the executed round (none for the charged one), 2×2 counters.
        let by_ph = |ph: &str| {
            events
                .iter()
                .filter(|e| e.get("ph").and_then(Json::as_str) == Some(ph))
                .count()
        };
        assert_eq!(by_ph("M"), 3);
        assert_eq!(by_ph("X"), 6);
        assert_eq!(by_ph("C"), 4);
        for e in events {
            assert!(e.get("name").and_then(Json::as_str).is_some());
            assert!(e.get("pid").and_then(Json::as_u64).is_some());
            assert!(e.get("tid").and_then(Json::as_u64).is_some());
            if e.get("ph").and_then(Json::as_str) == Some("X") {
                assert!(e.get("ts").and_then(Json::as_f64).is_some());
                assert!(e.get("dur").and_then(Json::as_f64).unwrap() >= 0.0);
            }
        }
        // One track per shard: the complete events cover tids {0, 1}.
        let tids: std::collections::BTreeSet<u64> = events
            .iter()
            .filter(|e| e.get("ph").and_then(Json::as_str) == Some("X"))
            .map(|e| e.get("tid").and_then(Json::as_u64).unwrap())
            .collect();
        assert_eq!(tids.into_iter().collect::<Vec<_>>(), vec![0, 1]);
        // The barrier_wait span sits after the shard's busy time.
        let barrier = events
            .iter()
            .find(|e| {
                e.get("name").and_then(Json::as_str) == Some("barrier_wait")
                    && e.get("tid").and_then(Json::as_u64) == Some(1)
            })
            .unwrap();
        assert_eq!(barrier.get("ts").and_then(Json::as_f64), Some(1.5));
        assert_eq!(barrier.get("dur").and_then(Json::as_f64), Some(2.0));
    }

    #[test]
    fn stats_match_runner_integration() {
        use crate::runner::{run_scenario_with, RunOptions};
        use crate::scenario::{GraphFamily, Scenario};
        let sc = Scenario::new(GraphFamily::Grid { rows: 5, cols: 5 })
            .seed(2)
            .pooled(3);
        let opts = RunOptions {
            profile: true,
            ..Default::default()
        };
        let rec = run_scenario_with(&sc, &opts).unwrap();
        let p = rec.profile.expect("profiled run carries the section");
        assert_eq!(p.shards, 3);
        assert!(p.step_us >= 0.0 && p.transfer_us > 0.0);
        assert!(p.barrier_share >= 0.0 && p.barrier_share <= 1.0);
        assert!(
            p.imbalance >= 1.0,
            "max/mean is at least 1, got {}",
            p.imbalance
        );
        // A plain run carries none.
        let rec = run_scenario_with(&sc, &RunOptions::default()).unwrap();
        assert!(rec.profile.is_none());
    }
}
