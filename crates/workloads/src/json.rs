//! A minimal JSON document model with a writer and a strict parser.
//!
//! The build environment vendors its dependencies offline, so there is no
//! serde; run manifests are small and flat, and this hand-rolled subset
//! (objects, arrays, strings, f64 numbers, booleans, null) is all they
//! need. The writer and parser round-trip every value the manifests emit,
//! which `manifest::tests` and the suite acceptance test verify.

use std::fmt;

/// A JSON value. Object keys keep insertion order (manifests are written
/// for humans to diff).
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number; integers up to 2⁵³ are exact.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, as ordered key-value pairs.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Wraps a `u64` (exact up to 2⁵³ — plenty for round/byte counters
    /// and microsecond wall clocks).
    pub fn num(v: u64) -> Json {
        Json::Num(v as f64)
    }

    /// Wraps a string slice.
    pub fn str(v: &str) -> Json {
        Json::Str(v.to_string())
    }

    /// Object field lookup.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a `u64`, if it is a non-negative integral number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(x) if *x >= 0.0 && x.fract() == 0.0 && *x <= (1u64 << 53) as f64 => {
                Some(*x as u64)
            }
            _ => None,
        }
    }

    /// The value as an `f64` number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(x) => Some(*x),
            _ => None,
        }
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an array slice.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Pretty-prints with two-space indentation and a trailing newline.
    pub fn to_string_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, depth: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(x) => write_number(out, *x),
            Json::Str(s) => write_string(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    indent(out, depth + 1);
                    item.write(out, depth + 1);
                }
                out.push('\n');
                indent(out, depth);
                out.push(']');
            }
            Json::Obj(fields) => {
                if fields.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    indent(out, depth + 1);
                    write_string(out, k);
                    out.push_str(": ");
                    v.write(out, depth + 1);
                }
                out.push('\n');
                indent(out, depth);
                out.push('}');
            }
        }
    }

    /// Parses a JSON document (exactly one value, trailing whitespace
    /// allowed).
    pub fn parse(text: &str) -> Result<Json, JsonError> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let value = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after document"));
        }
        Ok(value)
    }
}

fn indent(out: &mut String, depth: usize) {
    for _ in 0..depth {
        out.push_str("  ");
    }
}

fn write_number(out: &mut String, x: f64) {
    if x.fract() == 0.0 && x.abs() <= (1u64 << 53) as f64 {
        out.push_str(&format!("{}", x as i64));
    } else {
        // `{:?}` prints the shortest representation that round-trips.
        out.push_str(&format!("{x:?}"));
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A parse failure with a byte offset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset of the failure.
    pub offset: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, msg: &str) -> JsonError {
        JsonError {
            offset: self.pos,
            message: msg.to_string(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected '{word}'")))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            let start = self.pos;
            // Fast path: run of plain UTF-8 bytes.
            while matches!(self.peek(), Some(c) if c != b'"' && c != b'\\' && c >= 0x20) {
                self.pos += 1;
            }
            s.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| self.err("invalid UTF-8 in string"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => s.push('"'),
                        Some(b'\\') => s.push('\\'),
                        Some(b'/') => s.push('/'),
                        Some(b'n') => s.push('\n'),
                        Some(b'r') => s.push('\r'),
                        Some(b't') => s.push('\t'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| self.err("bad \\u escape"))?;
                            // Surrogate pairs are not needed for the
                            // manifests' ASCII control escapes.
                            s.push(
                                char::from_u32(hex)
                                    .ok_or_else(|| self.err("bad \\u code point"))?,
                            );
                            self.pos += 4;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                _ => return Err(self.err("unterminated string")),
            }
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|t| t.parse::<f64>().ok())
            .map(Json::Num)
            .ok_or_else(|| self.err("bad number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_nested_document() {
        let doc = Json::Obj(vec![
            ("suite".into(), Json::str("smoke")),
            ("count".into(), Json::num(12)),
            ("ratio".into(), Json::Num(0.125)),
            ("ok".into(), Json::Bool(true)),
            ("nothing".into(), Json::Null),
            (
                "runs".into(),
                Json::Arr(vec![
                    Json::Obj(vec![("name".into(), Json::str("a \"quoted\"\nname"))]),
                    Json::Arr(vec![]),
                    Json::Obj(vec![]),
                ]),
            ),
        ]);
        let text = doc.to_string_pretty();
        assert_eq!(Json::parse(&text).unwrap(), doc);
    }

    #[test]
    fn parses_whitespace_and_rejects_garbage() {
        assert_eq!(
            Json::parse(" { \"a\" : [ 1 , 2 ] } ").unwrap(),
            Json::Obj(vec![(
                "a".into(),
                Json::Arr(vec![Json::Num(1.0), Json::Num(2.0)])
            )])
        );
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("{} extra").is_err());
        assert!(Json::parse("{\"a\" 1}").is_err());
        assert!(Json::parse("[1, ]").is_err());
        assert!(Json::parse("\"unterminated").is_err());
    }

    #[test]
    fn integers_written_exactly() {
        let j = Json::num(u64::MAX >> 12); // within 2^53
        let text = j.to_string_pretty();
        assert_eq!(text.trim(), format!("{}", u64::MAX >> 12));
        assert_eq!(Json::parse(&text).unwrap().as_u64(), Some(u64::MAX >> 12));
    }

    #[test]
    fn accessors() {
        let j = Json::parse("{\"s\": \"x\", \"n\": 3, \"b\": false}").unwrap();
        assert_eq!(j.get("s").and_then(Json::as_str), Some("x"));
        assert_eq!(j.get("n").and_then(Json::as_u64), Some(3));
        assert_eq!(j.get("b").and_then(Json::as_bool), Some(false));
        assert_eq!(j.get("missing"), None);
        assert_eq!(Json::Num(1.5).as_u64(), None);
    }
}
