//! Structured run manifests: what a suite execution writes to disk
//! (`BENCH_*.json`) and what regression tooling diffs across runs.
//!
//! Every record carries the scenario coordinates (family, `k`, algorithm,
//! engine), the graph's realized shape, the engine's cost counters
//! (rounds, messages, bits, peak queue depth), per-phase wall clock and
//! the validation verdict. [`SuiteManifest::to_json_string`] and
//! [`SuiteManifest::parse`] round-trip exactly (checked in tests), so a
//! manifest written by one build is machine-readable by the next.

use crate::json::{Json, JsonError};

/// Per-phase wall clock, in microseconds.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PhaseWall {
    /// Building the graph from its family spec.
    pub build_us: u64,
    /// Running the algorithm on the engine.
    pub run_us: u64,
    /// Re-verifying the output with the `check` predicates.
    pub validate_us: u64,
}

/// Wall-clock statistics over repeated invocations of the same
/// scenario (the run phase only). With a single invocation (the
/// default `Repeat::once()`), mean = min = max = the measured time and
/// `ci95_us` is zero; regression gating on wall clock only engages
/// when **both** compared records carry `samples >= 2` (see
/// `crate::diff`).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct WallStats {
    /// Mean run time per iteration, microseconds.
    pub mean_us: f64,
    /// Fastest invocation, microseconds.
    pub min_us: f64,
    /// Slowest invocation, microseconds.
    pub max_us: f64,
    /// Half-width of the 95% confidence interval of the mean
    /// (`1.96 * sd / sqrt(samples)`, sample standard deviation); zero
    /// when `samples < 2`.
    pub ci95_us: f64,
    /// Number of measured invocations (warmup excluded).
    pub samples: u64,
}

impl WallStats {
    /// The single-sample statistics a plain (non-repeated) run carries:
    /// mean = min = max = `run_us`, zero CI, one sample. Also how old
    /// manifests without a `wall_stats` section are interpreted.
    pub fn single(run_us: u64) -> Self {
        let t = run_us as f64;
        Self {
            mean_us: t,
            min_us: t,
            max_us: t,
            ci95_us: 0.0,
            samples: 1,
        }
    }

    /// Computes statistics from per-invocation samples (microseconds
    /// per iteration).
    ///
    /// # Panics
    ///
    /// Panics if `samples` is empty.
    pub fn from_samples(samples: &[f64]) -> Self {
        assert!(!samples.is_empty(), "need at least one sample");
        let n = samples.len() as f64;
        let mean = samples.iter().sum::<f64>() / n;
        let min = samples.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = samples.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let ci95 = if samples.len() < 2 {
            0.0
        } else {
            let var = samples.iter().map(|s| (s - mean).powi(2)).sum::<f64>() / (n - 1.0);
            1.96 * var.sqrt() / n.sqrt()
        };
        Self {
            mean_us: mean,
            min_us: min,
            max_us: max,
            ci95_us: ci95,
            samples: samples.len() as u64,
        }
    }

    /// The `[mean - ci95, mean + ci95]` interval.
    pub fn interval(&self) -> (f64, f64) {
        (self.mean_us - self.ci95_us, self.mean_us + self.ci95_us)
    }
}

/// One row of the optional per-round trace section: the
/// engine-invariant core of a `powersparse_congest::probe::RoundObs`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TraceRow {
    /// Round index (real, even when the trace is downsampled).
    pub round: u64,
    /// Directed edges still holding queued bits after the transfer.
    pub active_edges: u64,
    /// Distinct nodes that received a delivery this round.
    pub dirty_nodes: u64,
    /// Messages delivered this round.
    pub messages: u64,
    /// Bits sent this round.
    pub bits: u64,
}

/// The validation verdict of one run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Validation {
    /// Whether every checked predicate held.
    pub passed: bool,
    /// Human-readable summary (what was checked, measured values).
    pub detail: String,
}

/// One executed scenario.
#[derive(Debug, Clone, PartialEq)]
pub struct RunRecord {
    /// Canonical scenario name ([`crate::Scenario::name`]).
    pub name: String,
    /// Family identifier (e.g. `power_law`).
    pub family: String,
    /// Family label with parameters (e.g. `power_law(n=300,attach=3)`).
    pub graph: String,
    /// Realized node count.
    pub n: u64,
    /// Realized undirected edge count.
    pub m: u64,
    /// Realized maximum degree.
    pub max_degree: u64,
    /// Power-graph exponent.
    pub k: u64,
    /// Scenario seed.
    pub seed: u64,
    /// Algorithm identifier.
    pub algorithm: String,
    /// Engine identifier (`sequential` / `sharded`).
    pub engine: String,
    /// Worker count (1 for sequential).
    pub shards: u64,
    /// CONGEST rounds executed (including charged rounds).
    pub rounds: u64,
    /// Of which charged analytically.
    pub charged_rounds: u64,
    /// Messages delivered.
    pub messages: u64,
    /// Bits sent.
    pub bits: u64,
    /// Peak single-edge queue depth (messages), the congestion gauge.
    pub peak_queue_depth: u64,
    /// Peak arena footprint in cells (total queued messages at any
    /// transfer start, engine-invariant).
    pub arena_cells_peak: u64,
    /// Peak arena footprint in bytes (cells scaled by cell size).
    pub arena_bytes_peak: u64,
    /// Output cardinality (|MIS|, |ruling set|, |Q|).
    pub output_size: u64,
    /// Per-phase wall clock (first measured invocation).
    pub wall: PhaseWall,
    /// Wall-clock statistics over repeated invocations.
    pub wall_stats: WallStats,
    /// Optional per-round activity trace (possibly downsampled; absent
    /// unless the run was traced).
    pub trace: Option<Vec<TraceRow>>,
    /// Validation verdict.
    pub validation: Validation,
}

/// A full suite execution.
#[derive(Debug, Clone, PartialEq)]
pub struct SuiteManifest {
    /// Suite name (`smoke`, `full`, or the spec file's stem).
    pub suite: String,
    /// All runs, in execution order.
    pub runs: Vec<RunRecord>,
}

impl SuiteManifest {
    /// Number of runs whose validation passed.
    pub fn passed(&self) -> usize {
        self.runs.iter().filter(|r| r.validation.passed).count()
    }

    /// Whether every run validated.
    pub fn all_passed(&self) -> bool {
        self.passed() == self.runs.len()
    }

    /// The manifest as a [`Json`] document.
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("suite".into(), Json::str(&self.suite)),
            ("scenarios".into(), Json::num(self.runs.len() as u64)),
            ("passed".into(), Json::num(self.passed() as u64)),
            (
                "runs".into(),
                Json::Arr(self.runs.iter().map(RunRecord::to_json).collect()),
            ),
        ])
    }

    /// The manifest as pretty-printed JSON text.
    pub fn to_json_string(&self) -> String {
        self.to_json().to_string_pretty()
    }

    /// Parses a manifest back from JSON text (the round-trip inverse of
    /// [`SuiteManifest::to_json_string`]).
    ///
    /// # Errors
    ///
    /// Returns a [`JsonError`] on malformed JSON or missing/mistyped
    /// fields.
    pub fn parse(text: &str) -> Result<Self, JsonError> {
        let doc = Json::parse(text)?;
        let suite = req_str(&doc, "suite")?;
        let runs = doc
            .get("runs")
            .and_then(Json::as_arr)
            .ok_or_else(|| missing("runs"))?
            .iter()
            .map(RunRecord::from_json)
            .collect::<Result<Vec<_>, _>>()?;
        Ok(Self { suite, runs })
    }
}

impl RunRecord {
    /// The record as a [`Json`] object. The `trace` key is emitted only
    /// when a trace was captured, so untraced manifests stay compact
    /// and byte-stable against older builds' diff tooling.
    pub fn to_json(&self) -> Json {
        let mut fields = vec![
            ("name".into(), Json::str(&self.name)),
            ("family".into(), Json::str(&self.family)),
            ("graph".into(), Json::str(&self.graph)),
            ("n".into(), Json::num(self.n)),
            ("m".into(), Json::num(self.m)),
            ("max_degree".into(), Json::num(self.max_degree)),
            ("k".into(), Json::num(self.k)),
            ("seed".into(), Json::num(self.seed)),
            ("algorithm".into(), Json::str(&self.algorithm)),
            ("engine".into(), Json::str(&self.engine)),
            ("shards".into(), Json::num(self.shards)),
            ("rounds".into(), Json::num(self.rounds)),
            ("charged_rounds".into(), Json::num(self.charged_rounds)),
            ("messages".into(), Json::num(self.messages)),
            ("bits".into(), Json::num(self.bits)),
            ("peak_queue_depth".into(), Json::num(self.peak_queue_depth)),
            ("arena_cells_peak".into(), Json::num(self.arena_cells_peak)),
            ("arena_bytes_peak".into(), Json::num(self.arena_bytes_peak)),
            ("output_size".into(), Json::num(self.output_size)),
            (
                "wall_us".into(),
                Json::Obj(vec![
                    ("build".into(), Json::num(self.wall.build_us)),
                    ("run".into(), Json::num(self.wall.run_us)),
                    ("validate".into(), Json::num(self.wall.validate_us)),
                ]),
            ),
            (
                "wall_stats".into(),
                Json::Obj(vec![
                    ("mean_us".into(), Json::Num(self.wall_stats.mean_us)),
                    ("min_us".into(), Json::Num(self.wall_stats.min_us)),
                    ("max_us".into(), Json::Num(self.wall_stats.max_us)),
                    ("ci95_us".into(), Json::Num(self.wall_stats.ci95_us)),
                    ("samples".into(), Json::num(self.wall_stats.samples)),
                ]),
            ),
        ];
        if let Some(trace) = &self.trace {
            fields.push((
                "trace".into(),
                Json::Arr(
                    trace
                        .iter()
                        .map(|row| {
                            Json::Obj(vec![
                                ("round".into(), Json::num(row.round)),
                                ("active_edges".into(), Json::num(row.active_edges)),
                                ("dirty_nodes".into(), Json::num(row.dirty_nodes)),
                                ("messages".into(), Json::num(row.messages)),
                                ("bits".into(), Json::num(row.bits)),
                            ])
                        })
                        .collect(),
                ),
            ));
        }
        fields.push((
            "validation".into(),
            Json::Obj(vec![
                ("passed".into(), Json::Bool(self.validation.passed)),
                ("detail".into(), Json::str(&self.validation.detail)),
            ]),
        ));
        Json::Obj(fields)
    }

    /// Parses one record from its JSON object. The observability fields
    /// introduced with the probe layer (`arena_*_peak`, `wall_stats`,
    /// `trace`) are optional, so manifests written by older builds
    /// still parse: missing arena gauges read as zero, missing
    /// statistics derive from the plain `wall_us.run` sample, and a
    /// missing trace reads as "not captured".
    ///
    /// # Errors
    ///
    /// Returns a [`JsonError`] on missing or mistyped fields.
    pub fn from_json(doc: &Json) -> Result<Self, JsonError> {
        let wall = doc.get("wall_us").ok_or_else(|| missing("wall_us"))?;
        let validation = doc.get("validation").ok_or_else(|| missing("validation"))?;
        let run_us = req_u64(wall, "run")?;
        let wall_stats = match doc.get("wall_stats") {
            None => WallStats::single(run_us),
            Some(stats) => WallStats {
                mean_us: req_f64(stats, "mean_us")?,
                min_us: req_f64(stats, "min_us")?,
                max_us: req_f64(stats, "max_us")?,
                ci95_us: req_f64(stats, "ci95_us")?,
                samples: req_u64(stats, "samples")?,
            },
        };
        let trace = match doc.get("trace") {
            None => None,
            Some(rows) => Some(
                rows.as_arr()
                    .ok_or_else(|| missing("trace"))?
                    .iter()
                    .map(|row| {
                        Ok(TraceRow {
                            round: req_u64(row, "round")?,
                            active_edges: req_u64(row, "active_edges")?,
                            dirty_nodes: req_u64(row, "dirty_nodes")?,
                            messages: req_u64(row, "messages")?,
                            bits: req_u64(row, "bits")?,
                        })
                    })
                    .collect::<Result<Vec<_>, JsonError>>()?,
            ),
        };
        Ok(Self {
            name: req_str(doc, "name")?,
            family: req_str(doc, "family")?,
            graph: req_str(doc, "graph")?,
            n: req_u64(doc, "n")?,
            m: req_u64(doc, "m")?,
            max_degree: req_u64(doc, "max_degree")?,
            k: req_u64(doc, "k")?,
            seed: req_u64(doc, "seed")?,
            algorithm: req_str(doc, "algorithm")?,
            engine: req_str(doc, "engine")?,
            shards: req_u64(doc, "shards")?,
            rounds: req_u64(doc, "rounds")?,
            charged_rounds: req_u64(doc, "charged_rounds")?,
            messages: req_u64(doc, "messages")?,
            bits: req_u64(doc, "bits")?,
            peak_queue_depth: req_u64(doc, "peak_queue_depth")?,
            arena_cells_peak: opt_u64(doc, "arena_cells_peak")?,
            arena_bytes_peak: opt_u64(doc, "arena_bytes_peak")?,
            output_size: req_u64(doc, "output_size")?,
            wall: PhaseWall {
                build_us: req_u64(wall, "build")?,
                run_us,
                validate_us: req_u64(wall, "validate")?,
            },
            wall_stats,
            trace,
            validation: Validation {
                passed: validation
                    .get("passed")
                    .and_then(Json::as_bool)
                    .ok_or_else(|| missing("validation.passed"))?,
                detail: req_str(validation, "detail")?,
            },
        })
    }
}

fn missing(field: &str) -> JsonError {
    JsonError {
        offset: 0,
        message: format!("missing or mistyped field `{field}`"),
    }
}

fn req_str(doc: &Json, field: &str) -> Result<String, JsonError> {
    doc.get(field)
        .and_then(Json::as_str)
        .map(str::to_string)
        .ok_or_else(|| missing(field))
}

fn req_u64(doc: &Json, field: &str) -> Result<u64, JsonError> {
    doc.get(field)
        .and_then(Json::as_u64)
        .ok_or_else(|| missing(field))
}

fn req_f64(doc: &Json, field: &str) -> Result<f64, JsonError> {
    doc.get(field)
        .and_then(Json::as_f64)
        .ok_or_else(|| missing(field))
}

/// An optional numeric field that older manifests lack: absent reads
/// as zero, but a *present* mistyped value is still an error.
fn opt_u64(doc: &Json, field: &str) -> Result<u64, JsonError> {
    match doc.get(field) {
        None => Ok(0),
        Some(v) => v.as_u64().ok_or_else(|| missing(field)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> SuiteManifest {
        SuiteManifest {
            suite: "smoke".into(),
            runs: vec![RunRecord {
                name: "gnp(n=192,d=8)/k1/luby_mis/sharded4".into(),
                family: "gnp".into(),
                graph: "gnp(n=192,d=8)".into(),
                n: 192,
                m: 768,
                max_degree: 17,
                k: 1,
                seed: 42,
                algorithm: "luby_mis".into(),
                engine: "sharded".into(),
                shards: 4,
                rounds: 77,
                charged_rounds: 0,
                messages: 12345,
                bits: 98765,
                peak_queue_depth: 9,
                arena_cells_peak: 140,
                arena_bytes_peak: 4480,
                output_size: 55,
                wall: PhaseWall {
                    build_us: 120,
                    run_us: 4800,
                    validate_us: 310,
                },
                wall_stats: WallStats {
                    mean_us: 4730.25,
                    min_us: 4601.0,
                    max_us: 4905.5,
                    ci95_us: 88.125,
                    samples: 4,
                },
                trace: Some(vec![
                    TraceRow {
                        round: 0,
                        active_edges: 12,
                        dirty_nodes: 0,
                        messages: 0,
                        bits: 96,
                    },
                    TraceRow {
                        round: 76,
                        active_edges: 0,
                        dirty_nodes: 3,
                        messages: 3,
                        bits: 0,
                    },
                ]),
                validation: Validation {
                    passed: true,
                    detail: "MIS of G^1: independent + maximal, |S| = 55".into(),
                },
            }],
        }
    }

    #[test]
    fn manifest_round_trips() {
        let m = sample();
        let text = m.to_json_string();
        let back = SuiteManifest::parse(&text).unwrap();
        assert_eq!(back, m);
        // And the re-serialization is byte-identical (stable field
        // order), so manifests diff cleanly across runs. This also pins
        // the non-integral wall statistics round-tripping exactly (the
        // writer uses the shortest-round-trip f64 representation).
        assert_eq!(back.to_json_string(), text);
    }

    #[test]
    fn untraced_record_omits_the_trace_key() {
        let mut m = sample();
        m.runs[0].trace = None;
        let text = m.to_json_string();
        assert!(!text.contains("\"trace\""));
        assert_eq!(SuiteManifest::parse(&text).unwrap(), m);
    }

    #[test]
    fn old_schema_without_observability_fields_still_parses() {
        // A manifest written before the probe layer: no arena gauges,
        // no wall_stats, no trace.
        let mut m = sample();
        m.runs[0].trace = None;
        let mut text = m.to_json_string();
        for key in ["arena_cells_peak", "arena_bytes_peak"] {
            let from = text.find(key).unwrap() - 1;
            let to = text[from..].find('\n').unwrap() + from + 1;
            text.replace_range(from..to, "");
        }
        let from = text.find("\"wall_stats\"").unwrap();
        let to = from + text[from..].find('}').unwrap();
        let to = to + text[to..].find('\n').unwrap() + 1;
        text.replace_range(from..to, "");
        assert!(!text.contains("wall_stats") && !text.contains("arena_"));
        let back = SuiteManifest::parse(&text).unwrap();
        let r = &back.runs[0];
        assert_eq!(r.arena_cells_peak, 0);
        assert_eq!(r.arena_bytes_peak, 0);
        assert_eq!(r.wall_stats, WallStats::single(r.wall.run_us));
        assert_eq!(r.wall_stats.samples, 1);
        assert_eq!(r.trace, None);
    }

    #[test]
    fn wall_stats_from_samples() {
        let s = WallStats::from_samples(&[100.0]);
        assert_eq!(
            (s.mean_us, s.min_us, s.max_us, s.ci95_us),
            (100.0, 100.0, 100.0, 0.0)
        );
        assert_eq!(s.samples, 1);
        let s = WallStats::from_samples(&[90.0, 110.0, 100.0]);
        assert_eq!(s.mean_us, 100.0);
        assert_eq!((s.min_us, s.max_us), (90.0, 110.0));
        // sd = 10, ci95 = 1.96 * 10 / sqrt(3)
        assert!((s.ci95_us - 1.96 * 10.0 / 3f64.sqrt()).abs() < 1e-9);
        let (lo, hi) = s.interval();
        assert!(lo < 100.0 && hi > 100.0);
    }

    #[test]
    fn parse_rejects_missing_fields() {
        let err = SuiteManifest::parse("{\"suite\": \"x\"}").unwrap_err();
        assert!(err.message.contains("runs"));
        let err = SuiteManifest::parse("{\"suite\": \"x\", \"runs\": [{}]}").unwrap_err();
        assert!(err.message.contains("wall_us"));
    }

    #[test]
    fn pass_counting() {
        let mut m = sample();
        assert!(m.all_passed());
        m.runs[0].validation.passed = false;
        assert_eq!(m.passed(), 0);
        assert!(!m.all_passed());
    }
}
