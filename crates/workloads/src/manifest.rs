//! Structured run manifests: what a suite execution writes to disk
//! (`BENCH_*.json`) and what regression tooling diffs across runs.
//!
//! Every record carries the scenario coordinates (family, `k`, algorithm,
//! engine), the graph's realized shape, the engine's cost counters
//! (rounds, messages, bits, peak queue depth), per-phase wall clock and
//! the validation verdict. [`SuiteManifest::to_json_string`] and
//! [`SuiteManifest::parse`] round-trip exactly (checked in tests), so a
//! manifest written by one build is machine-readable by the next.

use crate::json::{Json, JsonError};

/// Per-phase wall clock, in microseconds.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PhaseWall {
    /// Building the graph from its family spec.
    pub build_us: u64,
    /// Running the algorithm on the engine.
    pub run_us: u64,
    /// Re-verifying the output with the `check` predicates.
    pub validate_us: u64,
}

/// Wall-clock statistics over repeated invocations of the same
/// scenario (the run phase only). With a single invocation (the
/// default `Repeat::once()`), mean = min = max = the measured time and
/// `ci95_us` is zero; regression gating on wall clock only engages
/// when **both** compared records carry `samples >= 2` (see
/// `crate::diff`).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct WallStats {
    /// Mean run time per iteration, microseconds.
    pub mean_us: f64,
    /// Fastest invocation, microseconds.
    pub min_us: f64,
    /// Slowest invocation, microseconds.
    pub max_us: f64,
    /// Half-width of the 95% confidence interval of the mean
    /// (`t * sd / sqrt(samples)` with the Student-t critical value for
    /// `samples - 1` degrees of freedom below 30 samples, the normal
    /// `z = 1.96` from 30 on; sample standard deviation); zero when
    /// `samples < 2`.
    pub ci95_us: f64,
    /// Number of measured invocations (warmup excluded).
    pub samples: u64,
}

/// Two-sided 95% Student-t critical values for 1–29 degrees of freedom
/// (index `df - 1`). Suite repeats are typically 3–5, where the normal
/// `z = 1.96` badly understates the interval (df = 2 needs 4.303).
const T95: [f64; 29] = [
    12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228, 2.201, 2.179, 2.160,
    2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086, 2.080, 2.074, 2.069, 2.064, 2.060, 2.056,
    2.052, 2.048, 2.045,
];

/// The two-sided 95% critical value for `samples` measurements:
/// Student-t for fewer than 30, the normal `z` beyond.
fn crit95(samples: usize) -> f64 {
    debug_assert!(samples >= 2, "no interval from fewer than two samples");
    if samples < 30 {
        T95[samples - 2]
    } else {
        1.96
    }
}

impl WallStats {
    /// The single-sample statistics a plain (non-repeated) run carries:
    /// mean = min = max = `run_us`, zero CI, one sample. Also how old
    /// manifests without a `wall_stats` section are interpreted.
    pub fn single(run_us: u64) -> Self {
        let t = run_us as f64;
        Self {
            mean_us: t,
            min_us: t,
            max_us: t,
            ci95_us: 0.0,
            samples: 1,
        }
    }

    /// Computes statistics from per-invocation samples (microseconds
    /// per iteration).
    ///
    /// # Panics
    ///
    /// Panics if `samples` is empty.
    pub fn from_samples(samples: &[f64]) -> Self {
        assert!(!samples.is_empty(), "need at least one sample");
        let n = samples.len() as f64;
        let mean = samples.iter().sum::<f64>() / n;
        let min = samples.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = samples.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let ci95 = if samples.len() < 2 {
            0.0
        } else {
            let var = samples.iter().map(|s| (s - mean).powi(2)).sum::<f64>() / (n - 1.0);
            crit95(samples.len()) * var.sqrt() / n.sqrt()
        };
        Self {
            mean_us: mean,
            min_us: min,
            max_us: max,
            ci95_us: ci95,
            samples: samples.len() as u64,
        }
    }

    /// The `[mean - ci95, mean + ci95]` interval.
    pub fn interval(&self) -> (f64, f64) {
        (self.mean_us - self.ci95_us, self.mean_us + self.ci95_us)
    }
}

/// One row of the optional per-round trace section: the
/// engine-invariant core of a `powersparse_congest::probe::RoundObs`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TraceRow {
    /// Round index (real, even when the trace is downsampled).
    pub round: u64,
    /// Directed edges still holding queued bits after the transfer.
    pub active_edges: u64,
    /// Distinct nodes that received a delivery this round.
    pub dirty_nodes: u64,
    /// Messages delivered this round.
    pub messages: u64,
    /// Bits sent this round.
    pub bits: u64,
}

impl TraceRow {
    /// The row as a [`Json`] object (the schema `experiments trace
    /// --out` emits and the manifest `trace` section embeds).
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("round".into(), Json::num(self.round)),
            ("active_edges".into(), Json::num(self.active_edges)),
            ("dirty_nodes".into(), Json::num(self.dirty_nodes)),
            ("messages".into(), Json::num(self.messages)),
            ("bits".into(), Json::num(self.bits)),
        ])
    }

    /// Parses one row back from its JSON object.
    ///
    /// # Errors
    ///
    /// Returns a [`JsonError`] on missing or mistyped fields.
    pub fn from_json(doc: &Json) -> Result<Self, JsonError> {
        Ok(Self {
            round: req_u64(doc, "round")?,
            active_edges: req_u64(doc, "active_edges")?,
            dirty_nodes: req_u64(doc, "dirty_nodes")?,
            messages: req_u64(doc, "messages")?,
            bits: req_u64(doc, "bits")?,
        })
    }
}

/// Aggregated stage-attribution statistics of a profiled run — the
/// optional `profile` manifest section (absent unless the run was
/// executed under the span profiler). All times are totals over the
/// run's rounds, in microseconds, averaged over repeats; like the wall
/// statistics they are machine-shaped and never regression-gated, but
/// `barrier_share` is what `experiments trend` plots across PRs.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ProfileStats {
    /// Worker/shard count the profiled engine ran at.
    pub shards: u64,
    /// Total step time summed over shards and rounds, microseconds.
    pub step_us: f64,
    /// Total transfer/splice time summed over shards and rounds.
    pub transfer_us: f64,
    /// Total barrier-wait time summed over shards and rounds (zero on
    /// the sequential engine, which has no barrier).
    pub barrier_us: f64,
    /// Shard imbalance: max over shards of total step time, divided by
    /// the mean (1.0 = perfectly balanced; 0 with no step work).
    pub imbalance: f64,
    /// Barrier share of total attributed busy+wait time, in `[0, 1]`.
    pub barrier_share: f64,
}

impl ProfileStats {
    /// The section as a [`Json`] object.
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("shards".into(), Json::num(self.shards)),
            ("step_us".into(), Json::Num(self.step_us)),
            ("transfer_us".into(), Json::Num(self.transfer_us)),
            ("barrier_us".into(), Json::Num(self.barrier_us)),
            ("imbalance".into(), Json::Num(self.imbalance)),
            ("barrier_share".into(), Json::Num(self.barrier_share)),
        ])
    }

    /// Parses the section back from its JSON object.
    ///
    /// # Errors
    ///
    /// Returns a [`JsonError`] on missing or mistyped fields.
    pub fn from_json(doc: &Json) -> Result<Self, JsonError> {
        Ok(Self {
            shards: req_u64(doc, "shards")?,
            step_us: req_f64(doc, "step_us")?,
            transfer_us: req_f64(doc, "transfer_us")?,
            barrier_us: req_f64(doc, "barrier_us")?,
            imbalance: req_f64(doc, "imbalance")?,
            barrier_share: req_f64(doc, "barrier_share")?,
        })
    }
}

/// The optional wire section of a run: present only when the process
/// engine ran with a non-default transport (loopback TCP and/or a
/// shaped wire), so plain manifests stay byte-stable against older
/// diff tooling. The shaping knobs mirror
/// `powersparse_engine::NetworkSpec`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NetRecord {
    /// Child links ran over loopback TCP instead of Unix sockets.
    pub tcp: bool,
    /// Modeled one-way latency charged per frame, microseconds
    /// (0 = no latency term).
    pub latency_us: u64,
    /// Modeled throughput in bytes per second (0 = infinite).
    pub bandwidth_bytes_per_s: u64,
    /// Seed of the deterministic jitter stream (0 = no jitter).
    pub jitter_seed: u64,
}

impl NetRecord {
    /// The section as a [`Json`] object.
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("tcp".into(), Json::Bool(self.tcp)),
            ("latency_us".into(), Json::num(self.latency_us)),
            (
                "bandwidth_bytes_per_s".into(),
                Json::num(self.bandwidth_bytes_per_s),
            ),
            ("jitter_seed".into(), Json::num(self.jitter_seed)),
        ])
    }

    /// Parses the section back from its JSON object.
    ///
    /// # Errors
    ///
    /// Returns a [`JsonError`] on missing or mistyped fields.
    pub fn from_json(doc: &Json) -> Result<Self, JsonError> {
        Ok(Self {
            tcp: doc
                .get("tcp")
                .and_then(Json::as_bool)
                .ok_or_else(|| missing("net.tcp"))?,
            latency_us: req_u64(doc, "latency_us")?,
            bandwidth_bytes_per_s: req_u64(doc, "bandwidth_bytes_per_s")?,
            jitter_seed: req_u64(doc, "jitter_seed")?,
        })
    }
}

/// The optional recovery section of a run: present only when the
/// process engine ran under shard supervision
/// (`crate::scenario::RecoverySpec`), so plain manifests stay
/// byte-stable against older diff tooling. Carries the supervision
/// policy plus the one measured outcome — how many recoveries actually
/// ran. `recoveries` is operational (it moves with injected chaos, not
/// with the algorithm) and is never regression-gated; everything the
/// diff gate compares must stay identical whether or not this section
/// is present.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RecoveryRecord {
    /// Respawn attempts per failure before failing closed.
    pub max_retries: u64,
    /// Backoff between attempts, milliseconds.
    pub backoff_ms: u64,
    /// Checkpoint cadence in rounds (0 = phase-start replay only).
    pub checkpoint_every: u64,
    /// Successful shard recoveries during the run (first invocation
    /// when repeated).
    pub recoveries: u64,
}

impl RecoveryRecord {
    /// The section as a [`Json`] object.
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("max_retries".into(), Json::num(self.max_retries)),
            ("backoff_ms".into(), Json::num(self.backoff_ms)),
            ("checkpoint_every".into(), Json::num(self.checkpoint_every)),
            ("recoveries".into(), Json::num(self.recoveries)),
        ])
    }

    /// Parses the section back from its JSON object.
    ///
    /// # Errors
    ///
    /// Returns a [`JsonError`] on missing or mistyped fields.
    pub fn from_json(doc: &Json) -> Result<Self, JsonError> {
        Ok(Self {
            max_retries: req_u64(doc, "max_retries")?,
            backoff_ms: req_u64(doc, "backoff_ms")?,
            checkpoint_every: req_u64(doc, "checkpoint_every")?,
            recoveries: req_u64(doc, "recoveries")?,
        })
    }
}

/// The validation verdict of one run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Validation {
    /// Whether every checked predicate held.
    pub passed: bool,
    /// Human-readable summary (what was checked, measured values).
    pub detail: String,
}

/// One executed scenario.
#[derive(Debug, Clone, PartialEq)]
pub struct RunRecord {
    /// Canonical scenario name ([`crate::Scenario::name`]).
    pub name: String,
    /// Family identifier (e.g. `power_law`).
    pub family: String,
    /// Family label with parameters (e.g. `power_law(n=300,attach=3)`).
    pub graph: String,
    /// Realized node count.
    pub n: u64,
    /// Realized undirected edge count.
    pub m: u64,
    /// Realized maximum degree.
    pub max_degree: u64,
    /// Power-graph exponent.
    pub k: u64,
    /// Scenario seed.
    pub seed: u64,
    /// Algorithm identifier.
    pub algorithm: String,
    /// Engine identifier (`sequential` / `sharded`).
    pub engine: String,
    /// Worker count (1 for sequential).
    pub shards: u64,
    /// Optional wire configuration (absent unless the process engine
    /// ran over TCP and/or a shaped wire).
    pub net: Option<NetRecord>,
    /// Optional shard-supervision configuration and outcome (absent
    /// unless the process engine ran under a recovery policy).
    pub recovery: Option<RecoveryRecord>,
    /// CONGEST rounds executed (including charged rounds).
    pub rounds: u64,
    /// Of which charged analytically.
    pub charged_rounds: u64,
    /// Messages delivered.
    pub messages: u64,
    /// Bits sent.
    pub bits: u64,
    /// Peak single-edge queue depth (messages), the congestion gauge.
    pub peak_queue_depth: u64,
    /// Peak arena footprint in cells (total queued messages at any
    /// transfer start, engine-invariant).
    pub arena_cells_peak: u64,
    /// Peak arena footprint in bytes (cells scaled by cell size).
    pub arena_bytes_peak: u64,
    /// Heap allocations during the run phase (0 = not measured; only
    /// the bench binary's opt-in `alloc-gauge` counting allocator fills
    /// this in).
    pub alloc_count: u64,
    /// Peak live heap bytes during the run phase (0 = not measured).
    pub alloc_bytes_peak: u64,
    /// Output cardinality (|MIS|, |ruling set|, |Q|).
    pub output_size: u64,
    /// Per-phase wall clock (first measured invocation).
    pub wall: PhaseWall,
    /// Wall-clock statistics over repeated invocations.
    pub wall_stats: WallStats,
    /// Optional stage-attribution profile (absent unless the run was
    /// profiled).
    pub profile: Option<ProfileStats>,
    /// Optional per-round activity trace (possibly downsampled; absent
    /// unless the run was traced).
    pub trace: Option<Vec<TraceRow>>,
    /// Validation verdict.
    pub validation: Validation,
}

/// A full suite execution.
#[derive(Debug, Clone, PartialEq)]
pub struct SuiteManifest {
    /// Suite name (`smoke`, `full`, or the spec file's stem).
    pub suite: String,
    /// All runs, in execution order.
    pub runs: Vec<RunRecord>,
}

impl SuiteManifest {
    /// Number of runs whose validation passed.
    pub fn passed(&self) -> usize {
        self.runs.iter().filter(|r| r.validation.passed).count()
    }

    /// Whether every run validated.
    pub fn all_passed(&self) -> bool {
        self.passed() == self.runs.len()
    }

    /// The manifest as a [`Json`] document.
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("suite".into(), Json::str(&self.suite)),
            ("scenarios".into(), Json::num(self.runs.len() as u64)),
            ("passed".into(), Json::num(self.passed() as u64)),
            (
                "runs".into(),
                Json::Arr(self.runs.iter().map(RunRecord::to_json).collect()),
            ),
        ])
    }

    /// The manifest as pretty-printed JSON text.
    pub fn to_json_string(&self) -> String {
        self.to_json().to_string_pretty()
    }

    /// Parses a manifest back from JSON text (the round-trip inverse of
    /// [`SuiteManifest::to_json_string`]).
    ///
    /// # Errors
    ///
    /// Returns a [`JsonError`] on malformed JSON or missing/mistyped
    /// fields.
    pub fn parse(text: &str) -> Result<Self, JsonError> {
        let doc = Json::parse(text)?;
        let suite = req_str(&doc, "suite")?;
        let runs = doc
            .get("runs")
            .and_then(Json::as_arr)
            .ok_or_else(|| missing("runs"))?
            .iter()
            .map(RunRecord::from_json)
            .collect::<Result<Vec<_>, _>>()?;
        Ok(Self { suite, runs })
    }
}

impl RunRecord {
    /// The record as a [`Json`] object. The optional keys (`net`,
    /// `alloc_*` gauges, `profile`, `trace`) are emitted only when
    /// captured, so plain manifests stay compact and byte-stable
    /// against older builds' diff tooling.
    pub fn to_json(&self) -> Json {
        let mut fields = vec![
            ("name".into(), Json::str(&self.name)),
            ("family".into(), Json::str(&self.family)),
            ("graph".into(), Json::str(&self.graph)),
            ("n".into(), Json::num(self.n)),
            ("m".into(), Json::num(self.m)),
            ("max_degree".into(), Json::num(self.max_degree)),
            ("k".into(), Json::num(self.k)),
            ("seed".into(), Json::num(self.seed)),
            ("algorithm".into(), Json::str(&self.algorithm)),
            ("engine".into(), Json::str(&self.engine)),
            ("shards".into(), Json::num(self.shards)),
        ];
        if let Some(net) = &self.net {
            fields.push(("net".into(), net.to_json()));
        }
        if let Some(recovery) = &self.recovery {
            fields.push(("recovery".into(), recovery.to_json()));
        }
        fields.extend([
            ("rounds".into(), Json::num(self.rounds)),
            ("charged_rounds".into(), Json::num(self.charged_rounds)),
            ("messages".into(), Json::num(self.messages)),
            ("bits".into(), Json::num(self.bits)),
            ("peak_queue_depth".into(), Json::num(self.peak_queue_depth)),
            ("arena_cells_peak".into(), Json::num(self.arena_cells_peak)),
            ("arena_bytes_peak".into(), Json::num(self.arena_bytes_peak)),
        ]);
        if self.alloc_count != 0 || self.alloc_bytes_peak != 0 {
            fields.push(("alloc_count".into(), Json::num(self.alloc_count)));
            fields.push(("alloc_bytes_peak".into(), Json::num(self.alloc_bytes_peak)));
        }
        fields.extend([
            ("output_size".into(), Json::num(self.output_size)),
            (
                "wall_us".into(),
                Json::Obj(vec![
                    ("build".into(), Json::num(self.wall.build_us)),
                    ("run".into(), Json::num(self.wall.run_us)),
                    ("validate".into(), Json::num(self.wall.validate_us)),
                ]),
            ),
            (
                "wall_stats".into(),
                Json::Obj(vec![
                    ("mean_us".into(), Json::Num(self.wall_stats.mean_us)),
                    ("min_us".into(), Json::Num(self.wall_stats.min_us)),
                    ("max_us".into(), Json::Num(self.wall_stats.max_us)),
                    ("ci95_us".into(), Json::Num(self.wall_stats.ci95_us)),
                    ("samples".into(), Json::num(self.wall_stats.samples)),
                ]),
            ),
        ]);
        if let Some(profile) = &self.profile {
            fields.push(("profile".into(), profile.to_json()));
        }
        if let Some(trace) = &self.trace {
            fields.push((
                "trace".into(),
                Json::Arr(trace.iter().map(TraceRow::to_json).collect()),
            ));
        }
        fields.push((
            "validation".into(),
            Json::Obj(vec![
                ("passed".into(), Json::Bool(self.validation.passed)),
                ("detail".into(), Json::str(&self.validation.detail)),
            ]),
        ));
        Json::Obj(fields)
    }

    /// Parses one record from its JSON object. The observability fields
    /// introduced with the probe layer (`arena_*_peak`, `wall_stats`,
    /// `trace`) and the wire section (`net`) are optional, so manifests
    /// written by older builds still parse: missing arena gauges read
    /// as zero, missing statistics derive from the plain `wall_us.run`
    /// sample, and a missing trace or `net` reads as "not captured" /
    /// "default wire".
    ///
    /// # Errors
    ///
    /// Returns a [`JsonError`] on missing or mistyped fields.
    pub fn from_json(doc: &Json) -> Result<Self, JsonError> {
        let wall = doc.get("wall_us").ok_or_else(|| missing("wall_us"))?;
        let validation = doc.get("validation").ok_or_else(|| missing("validation"))?;
        let run_us = req_u64(wall, "run")?;
        let wall_stats = match doc.get("wall_stats") {
            None => WallStats::single(run_us),
            Some(stats) => WallStats {
                mean_us: req_f64(stats, "mean_us")?,
                min_us: req_f64(stats, "min_us")?,
                max_us: req_f64(stats, "max_us")?,
                ci95_us: req_f64(stats, "ci95_us")?,
                samples: req_u64(stats, "samples")?,
            },
        };
        let net = match doc.get("net") {
            None => None,
            Some(section) => Some(NetRecord::from_json(section)?),
        };
        let recovery = match doc.get("recovery") {
            None => None,
            Some(section) => Some(RecoveryRecord::from_json(section)?),
        };
        let profile = match doc.get("profile") {
            None => None,
            Some(section) => Some(ProfileStats::from_json(section)?),
        };
        let trace = match doc.get("trace") {
            None => None,
            Some(rows) => Some(
                rows.as_arr()
                    .ok_or_else(|| missing("trace"))?
                    .iter()
                    .map(TraceRow::from_json)
                    .collect::<Result<Vec<_>, JsonError>>()?,
            ),
        };
        Ok(Self {
            name: req_str(doc, "name")?,
            family: req_str(doc, "family")?,
            graph: req_str(doc, "graph")?,
            n: req_u64(doc, "n")?,
            m: req_u64(doc, "m")?,
            max_degree: req_u64(doc, "max_degree")?,
            k: req_u64(doc, "k")?,
            seed: req_u64(doc, "seed")?,
            algorithm: req_str(doc, "algorithm")?,
            engine: req_str(doc, "engine")?,
            shards: req_u64(doc, "shards")?,
            net,
            recovery,
            rounds: req_u64(doc, "rounds")?,
            charged_rounds: req_u64(doc, "charged_rounds")?,
            messages: req_u64(doc, "messages")?,
            bits: req_u64(doc, "bits")?,
            peak_queue_depth: req_u64(doc, "peak_queue_depth")?,
            arena_cells_peak: opt_u64(doc, "arena_cells_peak")?,
            arena_bytes_peak: opt_u64(doc, "arena_bytes_peak")?,
            alloc_count: opt_u64(doc, "alloc_count")?,
            alloc_bytes_peak: opt_u64(doc, "alloc_bytes_peak")?,
            output_size: req_u64(doc, "output_size")?,
            wall: PhaseWall {
                build_us: req_u64(wall, "build")?,
                run_us,
                validate_us: req_u64(wall, "validate")?,
            },
            wall_stats,
            profile,
            trace,
            validation: Validation {
                passed: validation
                    .get("passed")
                    .and_then(Json::as_bool)
                    .ok_or_else(|| missing("validation.passed"))?,
                detail: req_str(validation, "detail")?,
            },
        })
    }
}

fn missing(field: &str) -> JsonError {
    JsonError {
        offset: 0,
        message: format!("missing or mistyped field `{field}`"),
    }
}

fn req_str(doc: &Json, field: &str) -> Result<String, JsonError> {
    doc.get(field)
        .and_then(Json::as_str)
        .map(str::to_string)
        .ok_or_else(|| missing(field))
}

fn req_u64(doc: &Json, field: &str) -> Result<u64, JsonError> {
    doc.get(field)
        .and_then(Json::as_u64)
        .ok_or_else(|| missing(field))
}

fn req_f64(doc: &Json, field: &str) -> Result<f64, JsonError> {
    doc.get(field)
        .and_then(Json::as_f64)
        .ok_or_else(|| missing(field))
}

/// An optional numeric field that older manifests lack: absent reads
/// as zero, but a *present* mistyped value is still an error.
fn opt_u64(doc: &Json, field: &str) -> Result<u64, JsonError> {
    match doc.get(field) {
        None => Ok(0),
        Some(v) => v.as_u64().ok_or_else(|| missing(field)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> SuiteManifest {
        SuiteManifest {
            suite: "smoke".into(),
            runs: vec![RunRecord {
                name: "gnp(n=192,d=8)/k1/luby_mis/sharded4".into(),
                family: "gnp".into(),
                graph: "gnp(n=192,d=8)".into(),
                n: 192,
                m: 768,
                max_degree: 17,
                k: 1,
                seed: 42,
                algorithm: "luby_mis".into(),
                engine: "sharded".into(),
                shards: 4,
                net: None,
                recovery: None,
                rounds: 77,
                charged_rounds: 0,
                messages: 12345,
                bits: 98765,
                peak_queue_depth: 9,
                arena_cells_peak: 140,
                arena_bytes_peak: 4480,
                output_size: 55,
                wall: PhaseWall {
                    build_us: 120,
                    run_us: 4800,
                    validate_us: 310,
                },
                alloc_count: 0,
                alloc_bytes_peak: 0,
                wall_stats: WallStats {
                    mean_us: 4730.25,
                    min_us: 4601.0,
                    max_us: 4905.5,
                    ci95_us: 88.125,
                    samples: 4,
                },
                profile: None,
                trace: Some(vec![
                    TraceRow {
                        round: 0,
                        active_edges: 12,
                        dirty_nodes: 0,
                        messages: 0,
                        bits: 96,
                    },
                    TraceRow {
                        round: 76,
                        active_edges: 0,
                        dirty_nodes: 3,
                        messages: 3,
                        bits: 0,
                    },
                ]),
                validation: Validation {
                    passed: true,
                    detail: "MIS of G^1: independent + maximal, |S| = 55".into(),
                },
            }],
        }
    }

    #[test]
    fn manifest_round_trips() {
        let m = sample();
        let text = m.to_json_string();
        let back = SuiteManifest::parse(&text).unwrap();
        assert_eq!(back, m);
        // And the re-serialization is byte-identical (stable field
        // order), so manifests diff cleanly across runs. This also pins
        // the non-integral wall statistics round-tripping exactly (the
        // writer uses the shortest-round-trip f64 representation).
        assert_eq!(back.to_json_string(), text);
    }

    #[test]
    fn untraced_record_omits_the_trace_key() {
        let mut m = sample();
        m.runs[0].trace = None;
        let text = m.to_json_string();
        assert!(!text.contains("\"trace\""));
        assert_eq!(SuiteManifest::parse(&text).unwrap(), m);
    }

    #[test]
    fn old_schema_without_observability_fields_still_parses() {
        // A manifest written before the probe layer: no arena gauges,
        // no wall_stats, no trace.
        let mut m = sample();
        m.runs[0].trace = None;
        let mut text = m.to_json_string();
        for key in ["arena_cells_peak", "arena_bytes_peak"] {
            let from = text.find(key).unwrap() - 1;
            let to = text[from..].find('\n').unwrap() + from + 1;
            text.replace_range(from..to, "");
        }
        let from = text.find("\"wall_stats\"").unwrap();
        let to = from + text[from..].find('}').unwrap();
        let to = to + text[to..].find('\n').unwrap() + 1;
        text.replace_range(from..to, "");
        assert!(!text.contains("wall_stats") && !text.contains("arena_"));
        let back = SuiteManifest::parse(&text).unwrap();
        let r = &back.runs[0];
        assert_eq!(r.arena_cells_peak, 0);
        assert_eq!(r.arena_bytes_peak, 0);
        assert_eq!(r.wall_stats, WallStats::single(r.wall.run_us));
        assert_eq!(r.wall_stats.samples, 1);
        assert_eq!(r.trace, None);
    }

    #[test]
    fn wall_stats_from_samples() {
        let s = WallStats::from_samples(&[100.0]);
        assert_eq!(
            (s.mean_us, s.min_us, s.max_us, s.ci95_us),
            (100.0, 100.0, 100.0, 0.0)
        );
        assert_eq!(s.samples, 1);
        let s = WallStats::from_samples(&[90.0, 110.0, 100.0]);
        assert_eq!(s.mean_us, 100.0);
        assert_eq!((s.min_us, s.max_us), (90.0, 110.0));
        // sd = 10; n = 3 is deep in Student-t territory: df = 2 needs
        // 4.303, more than double the old z = 1.96.
        assert!((s.ci95_us - 4.303 * 10.0 / 3f64.sqrt()).abs() < 1e-9);
        let (lo, hi) = s.interval();
        assert!(lo < 100.0 && hi > 100.0);
    }

    #[test]
    fn ci95_uses_student_t_below_30_samples_and_z_beyond() {
        // Small n: the typical suite repeat counts all pull their
        // critical value from the t table.
        assert_eq!(crit95(2), 12.706);
        assert_eq!(crit95(3), 4.303);
        assert_eq!(crit95(5), 2.776);
        assert_eq!(crit95(29), 2.048);
        // Large n: the normal approximation takes over at exactly 30.
        assert_eq!(crit95(30), 1.96);
        assert_eq!(crit95(1000), 1.96);
        // End-to-end through from_samples: 30 equal-variance samples
        // use z, one fewer uses t(28).
        let wide: Vec<f64> = (0..30)
            .map(|i| if i % 2 == 0 { 90.0 } else { 110.0 })
            .collect();
        let s30 = WallStats::from_samples(&wide);
        let s29 = WallStats::from_samples(&wide[..29]);
        let sd30 = (wide.iter().map(|s| (s - 100.0).powi(2)).sum::<f64>() / 29.0).sqrt();
        assert!((s30.ci95_us - 1.96 * sd30 / 30f64.sqrt()).abs() < 1e-9);
        let mean29 = wide[..29].iter().sum::<f64>() / 29.0;
        let sd29 = (wide[..29].iter().map(|s| (s - mean29).powi(2)).sum::<f64>() / 28.0).sqrt();
        assert!((s29.ci95_us - 2.048 * sd29 / 29f64.sqrt()).abs() < 1e-9);
    }

    #[test]
    fn profile_and_alloc_sections_round_trip_and_stay_optional() {
        let mut m = sample();
        // Plain record: no alloc keys, no profile key.
        let text = m.to_json_string();
        assert!(!text.contains("alloc_count") && !text.contains("\"profile\""));
        m.runs[0].alloc_count = 812;
        m.runs[0].alloc_bytes_peak = 65536;
        m.runs[0].profile = Some(ProfileStats {
            shards: 4,
            step_us: 1200.5,
            transfer_us: 340.25,
            barrier_us: 610.75,
            imbalance: 1.37,
            barrier_share: 0.284,
        });
        let text = m.to_json_string();
        let back = SuiteManifest::parse(&text).unwrap();
        assert_eq!(back, m);
        assert_eq!(back.to_json_string(), text);
    }

    #[test]
    fn net_section_round_trips_and_stays_optional() {
        let mut m = sample();
        // Plain record: no net key, so pre-PR-9 diff tooling sees
        // byte-identical manifests.
        let text = m.to_json_string();
        assert!(!text.contains("\"net\""));
        m.runs[0].net = Some(NetRecord {
            tcp: true,
            latency_us: 200,
            bandwidth_bytes_per_s: 16 << 20,
            jitter_seed: 7,
        });
        let text = m.to_json_string();
        assert!(text.contains("\"net\""));
        let back = SuiteManifest::parse(&text).unwrap();
        assert_eq!(back, m);
        assert_eq!(back.to_json_string(), text);
    }

    #[test]
    fn recovery_section_round_trips_and_stays_optional() {
        let mut m = sample();
        // Plain record: no recovery key, so pre-supervision diff
        // tooling sees byte-identical manifests.
        let text = m.to_json_string();
        assert!(!text.contains("\"recovery\""));
        m.runs[0].recovery = Some(RecoveryRecord {
            max_retries: 3,
            backoff_ms: 5,
            checkpoint_every: 4,
            recoveries: 2,
        });
        let text = m.to_json_string();
        assert!(text.contains("\"recovery\""));
        let back = SuiteManifest::parse(&text).unwrap();
        assert_eq!(back, m);
        assert_eq!(back.to_json_string(), text);
        // A present-but-mistyped section is an error, not a silent skip.
        let broken = text.replace("\"max_retries\": 3", "\"max_retries\": \"three\"");
        assert!(SuiteManifest::parse(&broken).is_err());
    }

    #[test]
    fn trace_row_json_round_trips() {
        let row = TraceRow {
            round: 7,
            active_edges: 12,
            dirty_nodes: 3,
            messages: 5,
            bits: 160,
        };
        assert_eq!(TraceRow::from_json(&row.to_json()).unwrap(), row);
        assert!(TraceRow::from_json(&Json::Obj(vec![])).is_err());
    }

    #[test]
    fn parse_rejects_missing_fields() {
        let err = SuiteManifest::parse("{\"suite\": \"x\"}").unwrap_err();
        assert!(err.message.contains("runs"));
        let err = SuiteManifest::parse("{\"suite\": \"x\", \"runs\": [{}]}").unwrap_err();
        assert!(err.message.contains("wall_us"));
    }

    #[test]
    fn pass_counting() {
        let mut m = sample();
        assert!(m.all_passed());
        m.runs[0].validation.passed = false;
        assert_eq!(m.passed(), 0);
        assert!(!m.all_passed());
    }
}
