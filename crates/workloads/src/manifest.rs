//! Structured run manifests: what a suite execution writes to disk
//! (`BENCH_*.json`) and what regression tooling diffs across runs.
//!
//! Every record carries the scenario coordinates (family, `k`, algorithm,
//! engine), the graph's realized shape, the engine's cost counters
//! (rounds, messages, bits, peak queue depth), per-phase wall clock and
//! the validation verdict. [`SuiteManifest::to_json_string`] and
//! [`SuiteManifest::parse`] round-trip exactly (checked in tests), so a
//! manifest written by one build is machine-readable by the next.

use crate::json::{Json, JsonError};

/// Per-phase wall clock, in microseconds.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PhaseWall {
    /// Building the graph from its family spec.
    pub build_us: u64,
    /// Running the algorithm on the engine.
    pub run_us: u64,
    /// Re-verifying the output with the `check` predicates.
    pub validate_us: u64,
}

/// The validation verdict of one run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Validation {
    /// Whether every checked predicate held.
    pub passed: bool,
    /// Human-readable summary (what was checked, measured values).
    pub detail: String,
}

/// One executed scenario.
#[derive(Debug, Clone, PartialEq)]
pub struct RunRecord {
    /// Canonical scenario name ([`crate::Scenario::name`]).
    pub name: String,
    /// Family identifier (e.g. `power_law`).
    pub family: String,
    /// Family label with parameters (e.g. `power_law(n=300,attach=3)`).
    pub graph: String,
    /// Realized node count.
    pub n: u64,
    /// Realized undirected edge count.
    pub m: u64,
    /// Realized maximum degree.
    pub max_degree: u64,
    /// Power-graph exponent.
    pub k: u64,
    /// Scenario seed.
    pub seed: u64,
    /// Algorithm identifier.
    pub algorithm: String,
    /// Engine identifier (`sequential` / `sharded`).
    pub engine: String,
    /// Worker count (1 for sequential).
    pub shards: u64,
    /// CONGEST rounds executed (including charged rounds).
    pub rounds: u64,
    /// Of which charged analytically.
    pub charged_rounds: u64,
    /// Messages delivered.
    pub messages: u64,
    /// Bits sent.
    pub bits: u64,
    /// Peak single-edge queue depth (messages), the congestion gauge.
    pub peak_queue_depth: u64,
    /// Output cardinality (|MIS|, |ruling set|, |Q|).
    pub output_size: u64,
    /// Per-phase wall clock.
    pub wall: PhaseWall,
    /// Validation verdict.
    pub validation: Validation,
}

/// A full suite execution.
#[derive(Debug, Clone, PartialEq)]
pub struct SuiteManifest {
    /// Suite name (`smoke`, `full`, or the spec file's stem).
    pub suite: String,
    /// All runs, in execution order.
    pub runs: Vec<RunRecord>,
}

impl SuiteManifest {
    /// Number of runs whose validation passed.
    pub fn passed(&self) -> usize {
        self.runs.iter().filter(|r| r.validation.passed).count()
    }

    /// Whether every run validated.
    pub fn all_passed(&self) -> bool {
        self.passed() == self.runs.len()
    }

    /// The manifest as a [`Json`] document.
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("suite".into(), Json::str(&self.suite)),
            ("scenarios".into(), Json::num(self.runs.len() as u64)),
            ("passed".into(), Json::num(self.passed() as u64)),
            (
                "runs".into(),
                Json::Arr(self.runs.iter().map(RunRecord::to_json).collect()),
            ),
        ])
    }

    /// The manifest as pretty-printed JSON text.
    pub fn to_json_string(&self) -> String {
        self.to_json().to_string_pretty()
    }

    /// Parses a manifest back from JSON text (the round-trip inverse of
    /// [`SuiteManifest::to_json_string`]).
    ///
    /// # Errors
    ///
    /// Returns a [`JsonError`] on malformed JSON or missing/mistyped
    /// fields.
    pub fn parse(text: &str) -> Result<Self, JsonError> {
        let doc = Json::parse(text)?;
        let suite = req_str(&doc, "suite")?;
        let runs = doc
            .get("runs")
            .and_then(Json::as_arr)
            .ok_or_else(|| missing("runs"))?
            .iter()
            .map(RunRecord::from_json)
            .collect::<Result<Vec<_>, _>>()?;
        Ok(Self { suite, runs })
    }
}

impl RunRecord {
    /// The record as a [`Json`] object.
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("name".into(), Json::str(&self.name)),
            ("family".into(), Json::str(&self.family)),
            ("graph".into(), Json::str(&self.graph)),
            ("n".into(), Json::num(self.n)),
            ("m".into(), Json::num(self.m)),
            ("max_degree".into(), Json::num(self.max_degree)),
            ("k".into(), Json::num(self.k)),
            ("seed".into(), Json::num(self.seed)),
            ("algorithm".into(), Json::str(&self.algorithm)),
            ("engine".into(), Json::str(&self.engine)),
            ("shards".into(), Json::num(self.shards)),
            ("rounds".into(), Json::num(self.rounds)),
            ("charged_rounds".into(), Json::num(self.charged_rounds)),
            ("messages".into(), Json::num(self.messages)),
            ("bits".into(), Json::num(self.bits)),
            ("peak_queue_depth".into(), Json::num(self.peak_queue_depth)),
            ("output_size".into(), Json::num(self.output_size)),
            (
                "wall_us".into(),
                Json::Obj(vec![
                    ("build".into(), Json::num(self.wall.build_us)),
                    ("run".into(), Json::num(self.wall.run_us)),
                    ("validate".into(), Json::num(self.wall.validate_us)),
                ]),
            ),
            (
                "validation".into(),
                Json::Obj(vec![
                    ("passed".into(), Json::Bool(self.validation.passed)),
                    ("detail".into(), Json::str(&self.validation.detail)),
                ]),
            ),
        ])
    }

    /// Parses one record from its JSON object.
    ///
    /// # Errors
    ///
    /// Returns a [`JsonError`] on missing or mistyped fields.
    pub fn from_json(doc: &Json) -> Result<Self, JsonError> {
        let wall = doc.get("wall_us").ok_or_else(|| missing("wall_us"))?;
        let validation = doc.get("validation").ok_or_else(|| missing("validation"))?;
        Ok(Self {
            name: req_str(doc, "name")?,
            family: req_str(doc, "family")?,
            graph: req_str(doc, "graph")?,
            n: req_u64(doc, "n")?,
            m: req_u64(doc, "m")?,
            max_degree: req_u64(doc, "max_degree")?,
            k: req_u64(doc, "k")?,
            seed: req_u64(doc, "seed")?,
            algorithm: req_str(doc, "algorithm")?,
            engine: req_str(doc, "engine")?,
            shards: req_u64(doc, "shards")?,
            rounds: req_u64(doc, "rounds")?,
            charged_rounds: req_u64(doc, "charged_rounds")?,
            messages: req_u64(doc, "messages")?,
            bits: req_u64(doc, "bits")?,
            peak_queue_depth: req_u64(doc, "peak_queue_depth")?,
            output_size: req_u64(doc, "output_size")?,
            wall: PhaseWall {
                build_us: req_u64(wall, "build")?,
                run_us: req_u64(wall, "run")?,
                validate_us: req_u64(wall, "validate")?,
            },
            validation: Validation {
                passed: validation
                    .get("passed")
                    .and_then(Json::as_bool)
                    .ok_or_else(|| missing("validation.passed"))?,
                detail: req_str(validation, "detail")?,
            },
        })
    }
}

fn missing(field: &str) -> JsonError {
    JsonError {
        offset: 0,
        message: format!("missing or mistyped field `{field}`"),
    }
}

fn req_str(doc: &Json, field: &str) -> Result<String, JsonError> {
    doc.get(field)
        .and_then(Json::as_str)
        .map(str::to_string)
        .ok_or_else(|| missing(field))
}

fn req_u64(doc: &Json, field: &str) -> Result<u64, JsonError> {
    doc.get(field)
        .and_then(Json::as_u64)
        .ok_or_else(|| missing(field))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> SuiteManifest {
        SuiteManifest {
            suite: "smoke".into(),
            runs: vec![RunRecord {
                name: "gnp(n=192,d=8)/k1/luby_mis/sharded4".into(),
                family: "gnp".into(),
                graph: "gnp(n=192,d=8)".into(),
                n: 192,
                m: 768,
                max_degree: 17,
                k: 1,
                seed: 42,
                algorithm: "luby_mis".into(),
                engine: "sharded".into(),
                shards: 4,
                rounds: 77,
                charged_rounds: 0,
                messages: 12345,
                bits: 98765,
                peak_queue_depth: 9,
                output_size: 55,
                wall: PhaseWall {
                    build_us: 120,
                    run_us: 4800,
                    validate_us: 310,
                },
                validation: Validation {
                    passed: true,
                    detail: "MIS of G^1: independent + maximal, |S| = 55".into(),
                },
            }],
        }
    }

    #[test]
    fn manifest_round_trips() {
        let m = sample();
        let text = m.to_json_string();
        let back = SuiteManifest::parse(&text).unwrap();
        assert_eq!(back, m);
        // And the re-serialization is byte-identical (stable field
        // order), so manifests diff cleanly across runs.
        assert_eq!(back.to_json_string(), text);
    }

    #[test]
    fn parse_rejects_missing_fields() {
        let err = SuiteManifest::parse("{\"suite\": \"x\"}").unwrap_err();
        assert!(err.message.contains("runs"));
        let err = SuiteManifest::parse("{\"suite\": \"x\", \"runs\": [{}]}").unwrap_err();
        assert!(err.message.contains("wall_us"));
    }

    #[test]
    fn pass_counting() {
        let mut m = sample();
        assert!(m.all_passed());
        m.runs[0].validation.passed = false;
        assert_eq!(m.passed(), 0);
        assert!(!m.all_passed());
    }
}
