//! Trend reports over `BENCH_*.json` manifest history.
//!
//! The repository commits one manifest per benchmark surface
//! (`BENCH_suite.json` for the scenario smoke suite, `BENCH_engine.json`
//! for the engine-comparison table); as PRs regenerate them, the set of
//! manifests becomes the cost trajectory the ROADMAP asks for. A
//! [`TrendReport`] groups every run by `(suite, scenario)` across all
//! manifests it is fed, rendering the per-scenario series of
//! rounds/messages/bits/wall-clock and flagging **drift** — any
//! gated counter changing between sources, which `suite --diff` would
//! also catch pairwise but is easier to see here across the whole
//! history.
//!
//! The CLI front end is `experiments trend [DIR] [--out FILE.json]`: it
//! loads every `BENCH_*.json` in the directory (a malformed manifest is
//! a hard error — CI runs this, so a bad commit breaks the build),
//! prints the markdown report and optionally writes it as JSON.

use crate::json::Json;
use crate::manifest::SuiteManifest;
use std::collections::BTreeMap;

/// One scenario's measurement in one manifest.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TrendPoint {
    /// Which manifest this point came from (file name / label).
    pub source: String,
    /// CONGEST rounds.
    pub rounds: u64,
    /// Messages delivered.
    pub messages: u64,
    /// Bits sent.
    pub bits: u64,
    /// Peak single-edge queue depth.
    pub peak_queue_depth: u64,
    /// Algorithm wall clock, microseconds (never gates; context only).
    pub run_us: u64,
    /// Whether the run's validation passed.
    pub passed: bool,
}

/// One scenario tracked across manifests.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TrendSeries {
    /// Suite the scenario belongs to.
    pub suite: String,
    /// Canonical scenario name.
    pub scenario: String,
    /// One point per manifest containing the scenario, in source order.
    pub points: Vec<TrendPoint>,
}

impl TrendSeries {
    /// The per-counter series medians `(rounds, messages, bits,
    /// peak_queue_depth)` — the robust center every point is compared
    /// against. Uses the lower median for even-length series, so the
    /// reference is always a value the series actually took.
    pub fn medians(&self) -> (u64, u64, u64, u64) {
        fn median(mut v: Vec<u64>) -> u64 {
            v.sort_unstable();
            v[(v.len() - 1) / 2]
        }
        (
            median(self.points.iter().map(|p| p.rounds).collect()),
            median(self.points.iter().map(|p| p.messages).collect()),
            median(self.points.iter().map(|p| p.bits).collect()),
            median(self.points.iter().map(|p| p.peak_queue_depth).collect()),
        )
    }

    /// Whether a point deviates from the series medians in any
    /// deterministic counter.
    pub fn point_drifts(&self, p: &TrendPoint) -> bool {
        (p.rounds, p.messages, p.bits, p.peak_queue_depth) != self.medians()
    }

    /// Whether every deterministic counter matches the per-counter
    /// series **median** at every point (wall clock is expected to
    /// move; it never counts as drift). Comparing against the median
    /// rather than the previous point makes a single outlier manifest
    /// show up as one drifting point instead of poisoning both of its
    /// neighboring comparisons, and is trivially stable for
    /// single-point and constant series.
    pub fn stable(&self) -> bool {
        let m = self.medians();
        self.points
            .iter()
            .all(|p| (p.rounds, p.messages, p.bits, p.peak_queue_depth) == m)
    }
}

/// The cross-manifest trend report.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TrendReport {
    /// Every manifest source, in the order the series use.
    pub sources: Vec<String>,
    /// Per-`(suite, scenario)` series, sorted for stable output.
    pub series: Vec<TrendSeries>,
}

impl TrendReport {
    /// Builds the report from `(source label, manifest)` pairs. Sources
    /// are ordered by label (file names sort chronologically once a
    /// naming convention with dates/PR numbers exists; today's two
    /// surfaces are simply alphabetical), series by suite then
    /// scenario.
    pub fn from_manifests(manifests: &[(String, SuiteManifest)]) -> Self {
        let mut ordered: Vec<&(String, SuiteManifest)> = manifests.iter().collect();
        ordered.sort_by(|a, b| a.0.cmp(&b.0));
        let sources: Vec<String> = ordered.iter().map(|(s, _)| s.clone()).collect();
        let mut by_key: BTreeMap<(String, String), Vec<TrendPoint>> = BTreeMap::new();
        for (source, manifest) in ordered {
            for run in &manifest.runs {
                by_key
                    .entry((manifest.suite.clone(), run.name.clone()))
                    .or_default()
                    .push(TrendPoint {
                        source: source.clone(),
                        rounds: run.rounds,
                        messages: run.messages,
                        bits: run.bits,
                        peak_queue_depth: run.peak_queue_depth,
                        run_us: run.wall.run_us,
                        passed: run.validation.passed,
                    });
            }
        }
        let series = by_key
            .into_iter()
            .map(|((suite, scenario), points)| TrendSeries {
                suite,
                scenario,
                points,
            })
            .collect();
        Self { sources, series }
    }

    /// Number of series whose counters drift across sources.
    pub fn drifting(&self) -> usize {
        self.series.iter().filter(|s| !s.stable()).count()
    }

    /// The report as a [`Json`] document (the `--out` payload).
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            (
                "sources".into(),
                Json::Arr(self.sources.iter().map(|s| Json::str(s)).collect()),
            ),
            ("series_total".into(), Json::num(self.series.len() as u64)),
            ("drifting".into(), Json::num(self.drifting() as u64)),
            (
                "series".into(),
                Json::Arr(
                    self.series
                        .iter()
                        .map(|s| {
                            Json::Obj(vec![
                                ("suite".into(), Json::str(&s.suite)),
                                ("scenario".into(), Json::str(&s.scenario)),
                                ("stable".into(), Json::Bool(s.stable())),
                                (
                                    "points".into(),
                                    Json::Arr(
                                        s.points
                                            .iter()
                                            .map(|p| {
                                                Json::Obj(vec![
                                                    ("source".into(), Json::str(&p.source)),
                                                    ("rounds".into(), Json::num(p.rounds)),
                                                    ("messages".into(), Json::num(p.messages)),
                                                    ("bits".into(), Json::num(p.bits)),
                                                    (
                                                        "peak_queue_depth".into(),
                                                        Json::num(p.peak_queue_depth),
                                                    ),
                                                    ("run_us".into(), Json::num(p.run_us)),
                                                    ("passed".into(), Json::Bool(p.passed)),
                                                ])
                                            })
                                            .collect(),
                                    ),
                                ),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }

    /// The report as a markdown table, one row per (scenario, source).
    pub fn render_markdown(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{} manifests, {} series ({} drifting)\n\n",
            self.sources.len(),
            self.series.len(),
            self.drifting()
        ));
        out.push_str(
            "| suite | scenario | source | rounds | messages | bits | run wall | valid | trend |\n",
        );
        out.push_str("| --- | --- | --- | --- | --- | --- | --- | --- | --- |\n");
        for s in &self.series {
            for (i, p) in s.points.iter().enumerate() {
                // The drift marker sits on the rows that deviate from
                // the series medians, so the outlier manifest — not its
                // neighbors — is the one flagged.
                let marker = if s.point_drifts(p) {
                    "DRIFT"
                } else if i == 0 {
                    "stable"
                } else {
                    ""
                };
                out.push_str(&format!(
                    "| {} | {} | {} | {} | {} | {} | {:.1}ms | {} | {} |\n",
                    s.suite,
                    s.scenario,
                    p.source,
                    p.rounds,
                    p.messages,
                    p.bits,
                    p.run_us as f64 / 1000.0,
                    if p.passed { "yes" } else { "NO" },
                    marker,
                ));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::manifest::{PhaseWall, RunRecord, Validation, WallStats};

    fn record(name: &str, rounds: u64, messages: u64) -> RunRecord {
        RunRecord {
            name: name.into(),
            family: "gnp".into(),
            graph: "gnp(n=10,d=3)".into(),
            n: 10,
            m: 15,
            max_degree: 5,
            k: 1,
            seed: 1,
            algorithm: "luby_mis".into(),
            engine: "sequential".into(),
            shards: 1,
            net: None,
            recovery: None,
            rounds,
            charged_rounds: 0,
            messages,
            bits: messages * 8,
            peak_queue_depth: 2,
            arena_cells_peak: 12,
            arena_bytes_peak: 384,
            alloc_count: 0,
            alloc_bytes_peak: 0,
            output_size: 4,
            wall: PhaseWall {
                build_us: 10,
                run_us: 100,
                validate_us: 5,
            },
            wall_stats: WallStats::single(100),
            profile: None,
            trace: None,
            validation: Validation {
                passed: true,
                detail: "ok".into(),
            },
        }
    }

    fn manifest(suite: &str, runs: Vec<RunRecord>) -> SuiteManifest {
        SuiteManifest {
            suite: suite.into(),
            runs,
        }
    }

    #[test]
    fn groups_by_suite_and_scenario_across_sources() {
        let report = TrendReport::from_manifests(&[
            (
                "b_new.json".into(),
                manifest("smoke", vec![record("a", 5, 100), record("b", 7, 50)]),
            ),
            (
                "a_old.json".into(),
                manifest("smoke", vec![record("a", 5, 100)]),
            ),
        ]);
        assert_eq!(report.sources, vec!["a_old.json", "b_new.json"]);
        assert_eq!(report.series.len(), 2);
        let a = &report.series[0];
        assert_eq!((a.scenario.as_str(), a.points.len()), ("a", 2));
        // Source order inside a series follows the sorted source order.
        assert_eq!(a.points[0].source, "a_old.json");
        assert!(a.stable());
        assert_eq!(report.drifting(), 0);
    }

    #[test]
    fn drift_is_flagged_per_series_and_rendered() {
        let report = TrendReport::from_manifests(&[
            (
                "m1.json".into(),
                manifest("smoke", vec![record("a", 5, 100)]),
            ),
            (
                "m2.json".into(),
                manifest("smoke", vec![record("a", 6, 100)]),
            ),
        ]);
        assert_eq!(report.drifting(), 1);
        assert!(!report.series[0].stable());
        let md = report.render_markdown();
        assert!(md.contains("DRIFT"), "{md}");
        assert!(md.contains("| smoke | a | m1.json | 5 |"), "{md}");
    }

    #[test]
    fn single_point_and_constant_series_are_stable() {
        // A series with one point is its own median — trivially stable.
        let report = TrendReport::from_manifests(&[(
            "m1.json".into(),
            manifest("smoke", vec![record("a", 5, 100)]),
        )]);
        assert!(report.series[0].stable());
        assert_eq!(report.drifting(), 0);

        // A constant series matches its medians at every point.
        let report = TrendReport::from_manifests(&[
            (
                "m1.json".into(),
                manifest("smoke", vec![record("a", 5, 100)]),
            ),
            (
                "m2.json".into(),
                manifest("smoke", vec![record("a", 5, 100)]),
            ),
            (
                "m3.json".into(),
                manifest("smoke", vec![record("a", 5, 100)]),
            ),
        ]);
        assert!(report.series[0].stable());
        assert_eq!(report.series[0].medians(), (5, 100, 800, 2));
        assert_eq!(report.drifting(), 0);
    }

    #[test]
    fn outlier_is_flagged_against_the_series_median_not_its_neighbors() {
        // One outlier in a long series: the median of (5,5,9,5,5) is
        // still 5, so only the outlier point drifts — the m4 return to
        // baseline is not blamed, which pairwise comparison would do.
        let report = TrendReport::from_manifests(&[
            (
                "m1.json".into(),
                manifest("smoke", vec![record("a", 5, 100)]),
            ),
            (
                "m2.json".into(),
                manifest("smoke", vec![record("a", 5, 100)]),
            ),
            (
                "m3.json".into(),
                manifest("smoke", vec![record("a", 9, 100)]),
            ),
            (
                "m4.json".into(),
                manifest("smoke", vec![record("a", 5, 100)]),
            ),
        ]);
        let s = &report.series[0];
        assert_eq!(s.medians().0, 5);
        assert!(!s.stable());
        assert_eq!(report.drifting(), 1);
        let drifters: Vec<&str> = s
            .points
            .iter()
            .filter(|p| s.point_drifts(p))
            .map(|p| p.source.as_str())
            .collect();
        assert_eq!(drifters, vec!["m3.json"]);
        // The markdown flags exactly the outlier row.
        let md = report.render_markdown();
        assert!(
            md.contains("| m3.json | 9 | 100 | 800 | 0.1ms | yes | DRIFT |"),
            "{md}"
        );
        assert!(
            !md.contains("| m4.json | 5 | 100 | 800 | 0.1ms | yes | DRIFT |"),
            "{md}"
        );
    }

    #[test]
    fn even_length_series_use_the_lower_median() {
        let report = TrendReport::from_manifests(&[
            (
                "m1.json".into(),
                manifest("smoke", vec![record("a", 5, 100)]),
            ),
            (
                "m2.json".into(),
                manifest("smoke", vec![record("a", 7, 100)]),
            ),
        ]);
        // Lower median of [5, 7] is 5: a real value of the series, so
        // the m1 point is the stable one and m2 the drifter.
        let s = &report.series[0];
        assert_eq!(s.medians().0, 5);
        assert!(!s.point_drifts(&s.points[0]));
        assert!(s.point_drifts(&s.points[1]));
    }

    #[test]
    fn wall_clock_changes_are_not_drift() {
        let mut fast = record("a", 5, 100);
        fast.wall.run_us = 1;
        let report = TrendReport::from_manifests(&[
            (
                "m1.json".into(),
                manifest("smoke", vec![record("a", 5, 100)]),
            ),
            ("m2.json".into(), manifest("smoke", vec![fast])),
        ]);
        assert_eq!(report.drifting(), 0);
    }

    #[test]
    fn different_suites_form_different_series() {
        let report = TrendReport::from_manifests(&[
            (
                "m1.json".into(),
                manifest("smoke", vec![record("a", 5, 100)]),
            ),
            (
                "m2.json".into(),
                manifest("engines", vec![record("a", 5, 100)]),
            ),
        ]);
        assert_eq!(report.series.len(), 2, "same name, different suite");
        assert!(report.series.iter().all(|s| s.points.len() == 1));
    }

    #[test]
    fn json_payload_round_trips_through_the_parser() {
        let report = TrendReport::from_manifests(&[
            (
                "m1.json".into(),
                manifest("smoke", vec![record("a", 5, 100)]),
            ),
            (
                "m2.json".into(),
                manifest("smoke", vec![record("a", 5, 100)]),
            ),
        ]);
        let text = report.to_json().to_string_pretty();
        let parsed = Json::parse(&text).expect("trend JSON must parse");
        assert_eq!(
            parsed.get("series_total").and_then(Json::as_u64),
            Some(1),
            "{text}"
        );
        assert_eq!(parsed.get("drifting").and_then(Json::as_u64), Some(0));
        let sources = parsed.get("sources").and_then(Json::as_arr).unwrap();
        assert_eq!(sources.len(), 2);
    }

    #[test]
    fn empty_input_renders_an_empty_report() {
        let report = TrendReport::from_manifests(&[]);
        assert!(report.series.is_empty() && report.sources.is_empty());
        assert!(report.render_markdown().contains("0 manifests"));
    }
}
