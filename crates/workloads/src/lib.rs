//! `powersparse-workloads` — the scenario corpus and declarative
//! experiment runner of the `powersparse` reproduction.
//!
//! The paper's claims live on *power graphs of structured topologies*:
//! its sparsification bounds matter precisely when `G^k` is dense while
//! `G` stays sparse. This crate turns that into an executable, versioned
//! benchmark surface:
//!
//! * [`Scenario`] — a declarative experiment: graph family × size ×
//!   power `k` × algorithm × engine × shard count. Built fluently
//!   ([`Scenario::new`] + builder methods) or parsed from a TOML-subset
//!   spec file ([`parse_suite`]).
//! * [`builtin_suite`] — the curated matrix spanning every graph family
//!   (random, power-law, unit-disk, grid/torus, caterpillar/broom trees,
//!   bounded-growth cluster graphs) and both engine backends.
//! * [`run_suite`] / [`run_scenario`] — execute any scenario matrix on
//!   the requested [`powersparse_congest::engine::RoundEngine`] backend,
//!   re-verify every output with the `powersparse_graphs::check`
//!   predicates (MIS independence + maximality, ruling-set packing +
//!   covering, sparsifier invariant I3 + domination) and collect rounds,
//!   messages, bits, peak queue depth, arena footprint and per-phase
//!   wall clock. The `_with` variants take [`RunOptions`]: a [`Repeat`]
//!   scheme (warmup + timed invocations × iterations) that turns the
//!   wall clock into [`WallStats`] (mean/min/max/95% CI), and an
//!   optional untimed probe run capturing a bounded per-round
//!   [`TraceRow`] activity trace.
//! * [`SuiteManifest`] — the structured JSON result
//!   (`BENCH_*.json`-ready), with an exact parse/serialize round trip
//!   for cross-run regression diffing.
//! * [`diff_manifests`] — field-by-field manifest comparison
//!   (`experiments suite --diff old.json new.json`): flags
//!   round/message/bit regressions beyond a relative tolerance, missing
//!   or reshaped scenarios and validation flips; wall clock gates only
//!   when both sides carry repeat statistics with disjoint confidence
//!   intervals.
//! * [`TrendReport`] — the cross-manifest trajectory (`experiments
//!   trend DIR`): every committed `BENCH_*.json` grouped per scenario,
//!   rounds/messages/bits/wall-clock across history, drift flagged
//!   against the per-scenario series median.
//!
//! The `experiments suite` subcommand of `powersparse-bench` is the CLI
//! front end; CI runs `experiments suite --smoke` on every PR.
//!
//! # Example
//!
//! ```
//! use powersparse_workloads::{run_scenario, GraphFamily, Scenario, SuiteManifest};
//!
//! let sc = Scenario::new(GraphFamily::Torus { rows: 6, cols: 6 })
//!     .k(2)
//!     .seed(7)
//!     .sharded(2);
//! let record = run_scenario(&sc).unwrap();
//! assert!(record.validation.passed, "{}", record.validation.detail);
//!
//! // Manifests round-trip through JSON exactly.
//! let manifest = SuiteManifest { suite: "doc".into(), runs: vec![record] };
//! let text = manifest.to_json_string();
//! assert_eq!(SuiteManifest::parse(&text).unwrap(), manifest);
//! ```

pub mod diff;
pub mod json;
pub mod manifest;
pub mod profile;
pub mod runner;
pub mod scenario;
pub mod trend;

pub use diff::{
    diff_manifests, diff_manifests_with, DiffOptions, DiffReport, FieldChange, ShapeChange,
};
pub use json::{Json, JsonError};
pub use manifest::{
    NetRecord, PhaseWall, ProfileStats, RecoveryRecord, RunRecord, SuiteManifest, TraceRow,
    Validation, WallStats,
};
pub use profile::{breakdown, chrome_trace, profile_stats, ProfileBreakdown, ShardProfile};
pub use runner::{
    profile_scenario, run_chaos_scenario, run_scenario, run_scenario_with, run_suite,
    run_suite_with, suite_params, ChaosSpec, Repeat, RunOptions,
};
pub use scenario::{
    builtin_suite, parse_suite, AlgorithmSpec, EngineSpec, GraphFamily, RecoverySpec, Scenario,
    SpecError, SuiteProfile,
};
pub use trend::{TrendPoint, TrendReport, TrendSeries};
