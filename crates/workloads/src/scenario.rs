//! Declarative experiment scenarios: graph family × power `k` ×
//! algorithm × engine, buildable through a fluent API or parsed from a
//! simple TOML-subset spec file.
//!
//! A scenario is pure data — [`crate::runner`] turns it into a graph, an
//! engine, a run and a validated [`crate::manifest::RunRecord`].

use powersparse_engine::NetworkSpec;
use powersparse_graphs::{generators, Graph};
use std::collections::BTreeMap;
use std::fmt;

/// A deterministic graph family with its parameters. Every family builds
/// in `O(n + m)` (expected) and is reproducible bit-for-bit per seed.
#[derive(Debug, Clone, PartialEq)]
pub enum GraphFamily {
    /// Connected Erdős–Rényi-style graph with average degree `avg_deg`
    /// (random spanning path + uniform extra edges).
    Gnp {
        /// Node count.
        n: usize,
        /// Target average degree.
        avg_deg: f64,
    },
    /// Barabási–Albert preferential attachment (power-law degrees).
    PowerLaw {
        /// Node count.
        n: usize,
        /// Edges brought by each new node.
        attach: usize,
    },
    /// Random geometric / unit-disk graph on the unit square.
    Geometric {
        /// Node count.
        n: usize,
        /// Connection radius.
        radius: f64,
    },
    /// Hyperbolic random graph (power-law degrees with exponent
    /// `2·alpha + 1`, high clustering, giant component).
    Hyperbolic {
        /// Node count.
        n: usize,
        /// Target average degree.
        avg_deg: f64,
        /// Radial density exponent (`> 0.5`).
        alpha: f64,
    },
    /// 2D grid.
    Grid {
        /// Grid rows.
        rows: usize,
        /// Grid columns.
        cols: usize,
    },
    /// 2D torus (grid with wraparound).
    Torus {
        /// Torus rows.
        rows: usize,
        /// Torus columns.
        cols: usize,
    },
    /// Caterpillar tree: spine path with `legs` leaves per spine node.
    Caterpillar {
        /// Spine length.
        spine: usize,
        /// Leaves per spine node.
        legs: usize,
    },
    /// Broom tree: a handle path ending in a fan of bristles.
    Broom {
        /// Handle length.
        handle: usize,
        /// Bristle count.
        bristles: usize,
    },
    /// Bounded-growth cluster graph: a grid of bridged cliques.
    ClusterGrid {
        /// Cluster-grid rows.
        rows: usize,
        /// Cluster-grid columns.
        cols: usize,
        /// Clique size per cluster.
        cluster: usize,
    },
    /// Planted-community graph (equal-block stochastic block model):
    /// dense blocks (`p_in`) joined by a sparse random cut (`p_out`).
    Planted {
        /// Node count.
        n: usize,
        /// Community count.
        communities: usize,
        /// Intra-community edge probability.
        p_in: f64,
        /// Inter-community edge probability.
        p_out: f64,
    },
}

impl GraphFamily {
    /// Stable family identifier (used in manifests and spec files).
    pub fn id(&self) -> &'static str {
        match self {
            Self::Gnp { .. } => "gnp",
            Self::PowerLaw { .. } => "power_law",
            Self::Geometric { .. } => "geometric",
            Self::Hyperbolic { .. } => "hyperbolic",
            Self::Grid { .. } => "grid",
            Self::Torus { .. } => "torus",
            Self::Caterpillar { .. } => "caterpillar",
            Self::Broom { .. } => "broom",
            Self::ClusterGrid { .. } => "cluster_grid",
            Self::Planted { .. } => "planted",
        }
    }

    /// Human-readable label with parameters, e.g. `gnp(n=192,d=8)`.
    pub fn label(&self) -> String {
        match self {
            Self::Gnp { n, avg_deg } => format!("gnp(n={n},d={avg_deg})"),
            Self::PowerLaw { n, attach } => format!("power_law(n={n},attach={attach})"),
            Self::Geometric { n, radius } => format!("geometric(n={n},r={radius})"),
            Self::Hyperbolic { n, avg_deg, alpha } => {
                format!("hyperbolic(n={n},d={avg_deg},a={alpha})")
            }
            Self::Grid { rows, cols } => format!("grid({rows}x{cols})"),
            Self::Torus { rows, cols } => format!("torus({rows}x{cols})"),
            Self::Caterpillar { spine, legs } => format!("caterpillar(spine={spine},legs={legs})"),
            Self::Broom { handle, bristles } => format!("broom(handle={handle},b={bristles})"),
            Self::ClusterGrid {
                rows,
                cols,
                cluster,
            } => format!("cluster_grid({rows}x{cols},c={cluster})"),
            Self::Planted {
                n,
                communities,
                p_in,
                p_out,
            } => format!("planted(n={n},c={communities},pin={p_in},pout={p_out})"),
        }
    }

    /// Materializes the graph (deterministic per `seed`; the
    /// non-randomized families ignore it).
    pub fn build(&self, seed: u64) -> Graph {
        match *self {
            Self::Gnp { n, avg_deg } => generators::connected_sparse_gnp(n, avg_deg, seed),
            Self::PowerLaw { n, attach } => generators::barabasi_albert(n, attach, seed),
            Self::Geometric { n, radius } => generators::random_geometric(n, radius, seed),
            Self::Hyperbolic { n, avg_deg, alpha } => {
                generators::hyperbolic(n, avg_deg, alpha, seed)
            }
            Self::Grid { rows, cols } => generators::grid(rows, cols),
            Self::Torus { rows, cols } => generators::torus(rows, cols),
            Self::Caterpillar { spine, legs } => generators::caterpillar(spine, legs),
            Self::Broom { handle, bristles } => generators::broom(handle, bristles),
            Self::ClusterGrid {
                rows,
                cols,
                cluster,
            } => generators::cluster_grid(rows, cols, cluster),
            Self::Planted {
                n,
                communities,
                p_in,
                p_out,
            } => generators::planted(n, communities, p_in, p_out, seed),
        }
    }
}

/// The algorithm a scenario runs and validates. Every algorithm runs
/// through the engine-generic
/// [`powersparse_congest::engine::RoundPhase::step`] API and therefore
/// executes on any [`EngineSpec`].
#[derive(Debug, Clone, PartialEq)]
pub enum AlgorithmSpec {
    /// Luby's MIS of `G^k` (Section 8.1).
    LubyMis,
    /// Ghaffari's BeepingMIS of `G^k` via Lemma 8.2 ID-tagged beeps.
    BeepingMis,
    /// The shattering MIS of `G^k` (Theorems 1.2/1.4: pre-shattering,
    /// ruling set with balls, ball-graph network decomposition, cluster
    /// finishing). Requires a connected graph.
    ShatterMis {
        /// Use the two-phase post-shattering of Section 7.2.1 instead of
        /// the one-phase variant of Section 7.2.2.
        two_phase: bool,
    },
    /// Iterated power-graph sparsification (Algorithm 3 / Lemma 3.1).
    /// `derandomized` selects the seed-scan strategy (requires a
    /// connected graph for the global aggregation tree).
    Sparsify {
        /// Use the deterministic seed-scan strategy instead of
        /// randomized sampling.
        derandomized: bool,
    },
    /// Randomized `(k+1, kβ)`-ruling set (Corollary 1.3).
    BetaRulingSet {
        /// Domination stretch factor β ≥ 2.
        beta: usize,
    },
    /// Deterministic `(k+1, k²)`-ruling set (Theorem 1.1). Requires a
    /// connected graph.
    DetRulingK2,
    /// Network decomposition of `G^k` with separation `2k+1`
    /// (Theorem A.1). Requires a connected graph.
    PowerNd,
}

impl AlgorithmSpec {
    /// Stable identifier (used in manifests and spec files).
    pub fn id(&self) -> String {
        match self {
            Self::LubyMis => "luby_mis".into(),
            Self::BeepingMis => "beeping_mis".into(),
            Self::ShatterMis { two_phase: false } => "shatter_mis".into(),
            Self::ShatterMis { two_phase: true } => "shatter_mis_two_phase".into(),
            Self::Sparsify {
                derandomized: false,
            } => "sparsify".into(),
            Self::Sparsify { derandomized: true } => "sparsify_derandomized".into(),
            Self::BetaRulingSet { beta } => format!("beta_ruling(beta={beta})"),
            Self::DetRulingK2 => "det_ruling_k2".into(),
            Self::PowerNd => "power_nd".into(),
        }
    }
}

/// Supervision policy for the process engine's shard children: how many
/// respawn attempts a failed shard gets, how long to back off between
/// attempts, and how often the parent checkpoints child state so replay
/// suffixes stay short.
///
/// Recovery is **operational, not semantic**: a recovered run produces
/// bit-for-bit the outputs, counters and probe traces of an undisturbed
/// one (only `Metrics::recoveries` moves), so a `RecoverySpec` is *not*
/// part of the scenario identity ([`Scenario::name`]) and recovered
/// manifests stay diffable against clean baselines.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecoverySpec {
    /// Respawn attempts per failure before failing closed (>= 1).
    pub max_retries: u32,
    /// Sleep between attempts, in milliseconds (scaled linearly by the
    /// attempt number).
    pub backoff_ms: u64,
    /// Checkpoint the children every this many rounds (0 = never:
    /// recovery replays from the start of the current phase).
    pub checkpoint_every: u32,
}

impl Default for RecoverySpec {
    fn default() -> Self {
        Self {
            max_retries: 3,
            backoff_ms: 0,
            checkpoint_every: 4,
        }
    }
}

/// Which [`powersparse_congest::engine::RoundEngine`] backend executes
/// the scenario.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EngineSpec {
    /// The sequential reference `Simulator`.
    Sequential,
    /// The sharded data-parallel `ShardedSimulator` (scoped thread
    /// scatters per round).
    Sharded {
        /// Worker/shard count.
        shards: usize,
    },
    /// The persistent worker-pool `PooledSimulator` (epoch barrier,
    /// batched transfer).
    Pooled {
        /// Worker/shard count.
        shards: usize,
    },
    /// The multi-process `ProcessSimulator` (one forked child per
    /// shard, Unix-socket wire frames).
    Process {
        /// Worker/shard count.
        shards: usize,
    },
}

impl EngineSpec {
    /// Stable identifier.
    pub fn id(&self) -> &'static str {
        match self {
            Self::Sequential => "sequential",
            Self::Sharded { .. } => "sharded",
            Self::Pooled { .. } => "pooled",
            Self::Process { .. } => "process",
        }
    }

    /// Worker count (1 for the sequential engine).
    pub fn shards(&self) -> usize {
        match self {
            Self::Sequential => 1,
            Self::Sharded { shards } | Self::Pooled { shards } | Self::Process { shards } => {
                *shards
            }
        }
    }
}

/// One fully specified experiment: build the family's graph, run the
/// algorithm on the engine, validate the output, record the costs.
#[derive(Debug, Clone, PartialEq)]
pub struct Scenario {
    /// The communication graph's family and parameters.
    pub family: GraphFamily,
    /// Power-graph exponent `k` (the algorithms operate on `G^k`).
    pub k: usize,
    /// Seed for both graph generation and the algorithm's randomness.
    pub seed: u64,
    /// The algorithm to run and validate.
    pub algorithm: AlgorithmSpec,
    /// The engine backend.
    pub engine: EngineSpec,
    /// Optional wire shaping (latency/bandwidth/jitter) for the
    /// process engine's child links; `None` leaves the wire unshaped.
    /// Shaping moves wall clock only — every counter stays bit-for-bit
    /// identical (the engine contract).
    pub net: Option<NetworkSpec>,
    /// Run the process engine's child links over loopback TCP instead
    /// of Unix sockets (the multi-machine deployment shape).
    pub tcp: bool,
    /// Optional shard supervision for the process engine: `None` is
    /// fail-fast (a dead child aborts the run with the pinned error),
    /// `Some` respawns and replays failed children. Operational only —
    /// not part of the scenario identity.
    pub recovery: Option<RecoverySpec>,
}

impl Scenario {
    /// A scenario with defaults: `k = 1`, `seed = 1`, Luby MIS on the
    /// sequential engine.
    pub fn new(family: GraphFamily) -> Self {
        Self {
            family,
            k: 1,
            seed: 1,
            algorithm: AlgorithmSpec::LubyMis,
            engine: EngineSpec::Sequential,
            net: None,
            tcp: false,
            recovery: None,
        }
    }

    /// Sets the power `k`.
    pub fn k(mut self, k: usize) -> Self {
        self.k = k;
        self
    }

    /// Sets the seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the algorithm.
    pub fn algorithm(mut self, algorithm: AlgorithmSpec) -> Self {
        self.algorithm = algorithm;
        self
    }

    /// Runs on the sharded engine with `shards` workers.
    pub fn sharded(mut self, shards: usize) -> Self {
        self.engine = EngineSpec::Sharded { shards };
        self
    }

    /// Runs on the persistent-pool engine with `shards` workers.
    pub fn pooled(mut self, shards: usize) -> Self {
        self.engine = EngineSpec::Pooled { shards };
        self
    }

    /// Runs on the multi-process engine with `shards` forked children.
    pub fn process(mut self, shards: usize) -> Self {
        self.engine = EngineSpec::Process { shards };
        self
    }

    /// Runs on the sequential reference engine.
    pub fn sequential(mut self) -> Self {
        self.engine = EngineSpec::Sequential;
        self
    }

    /// Shapes the process engine's wire with `net` (latency, finite
    /// bandwidth, seeded jitter). Only valid on the process engine.
    pub fn network(mut self, net: NetworkSpec) -> Self {
        self.net = Some(net);
        self
    }

    /// Runs the process engine's child links over loopback TCP. Only
    /// valid on the process engine.
    pub fn tcp(mut self) -> Self {
        self.tcp = true;
        self
    }

    /// Supervises the process engine's shard children with `recovery`
    /// (respawn + checkpoint/replay instead of fail-fast). Only valid
    /// on the process engine.
    pub fn recovery(mut self, recovery: RecoverySpec) -> Self {
        self.recovery = Some(recovery);
        self
    }

    /// Canonical run name, e.g.
    /// `power_law(n=300,attach=3)/k2/luby_mis/sharded4`; a shaped or
    /// TCP wire is part of the identity, e.g.
    /// `.../process2+tcp+net(lat=200us,bw=0,jit=0)`. A [`RecoverySpec`]
    /// is deliberately **not** — recovery cannot move any compared
    /// counter, so recovered runs keep matching their clean baselines
    /// under `suite --diff`.
    pub fn name(&self) -> String {
        let mut name = format!(
            "{}/k{}/{}/{}{}",
            self.family.label(),
            self.k,
            self.algorithm.id(),
            self.engine.id(),
            match self.engine {
                EngineSpec::Sequential => String::new(),
                EngineSpec::Sharded { shards }
                | EngineSpec::Pooled { shards }
                | EngineSpec::Process { shards } => shards.to_string(),
            }
        );
        if self.tcp {
            name.push_str("+tcp");
        }
        if let Some(net) = self.net {
            name.push_str(&format!(
                "+net(lat={}us,bw={},jit={})",
                net.latency_us, net.bandwidth_bytes_per_s, net.jitter_seed
            ));
        }
        name
    }

    /// Checks that the scenario is executable as specified.
    ///
    /// # Errors
    ///
    /// Returns a description of the problem (e.g. zero shards, or wire
    /// options on an in-process engine). Every algorithm runs on every
    /// engine since the PR-3 step-API port, so algorithm × engine
    /// combinations are no longer restricted.
    pub fn validate_spec(&self) -> Result<(), String> {
        if self.engine.shards() == 0 {
            return Err("shards must be >= 1".into());
        }
        if self.k == 0 {
            return Err("k must be >= 1".into());
        }
        if !matches!(self.engine, EngineSpec::Process { .. }) {
            if self.net.is_some() {
                return Err("`net` shaping requires the process engine".into());
            }
            if self.tcp {
                return Err("`tcp` requires the process engine".into());
            }
            if self.recovery.is_some() {
                return Err("`recovery` supervision requires the process engine".into());
            }
        }
        if let Some(r) = self.recovery {
            if r.max_retries == 0 {
                return Err("`recovery.max_retries` must be >= 1".into());
            }
        }
        Ok(())
    }
}

/// Which built-in suite to materialize.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SuiteProfile {
    /// Small sizes, every family, all three engines — CI-speed
    /// (< seconds).
    Smoke,
    /// Larger sizes for real measurements; still laptop-scale.
    Full,
}

/// The curated built-in scenario suite: every graph family, all four
/// engines, all four algorithm classes. The smoke profile is the one CI
/// runs on every PR; the full profile scales sizes up for the
/// `BENCH_*.json` trajectory.
pub fn builtin_suite(profile: SuiteProfile) -> Vec<Scenario> {
    use AlgorithmSpec::*;
    let s = match profile {
        SuiteProfile::Smoke => 1,
        SuiteProfile::Full => 8,
    };
    let sharded = match profile {
        SuiteProfile::Smoke => 4,
        SuiteProfile::Full => 8,
    };
    let gnp = GraphFamily::Gnp {
        n: 192 * s,
        avg_deg: 8.0,
    };
    let power_law = GraphFamily::PowerLaw {
        n: 300 * s,
        attach: 3,
    };
    // Radius comfortably above the connectivity threshold √(ln n / n);
    // the suite's geometric scenarios run Luby MIS, which validates
    // per component and does not require connectivity.
    let geometric = GraphFamily::Geometric {
        n: 256 * s,
        radius: if s == 1 { 0.16 } else { 0.06 },
    };
    // Power-law-with-geometry regime; Luby MIS validates per component,
    // so the (rare) small satellite components are fine.
    let hyperbolic = GraphFamily::Hyperbolic {
        n: 256 * s,
        avg_deg: 6.0,
        alpha: 0.75,
    };
    let grid = GraphFamily::Grid {
        rows: 16 * s,
        cols: 12,
    };
    let torus = GraphFamily::Torus {
        rows: 12,
        cols: 12 * s,
    };
    let caterpillar = GraphFamily::Caterpillar {
        spine: 60 * s,
        legs: 3,
    };
    let broom = GraphFamily::Broom {
        handle: 80 * s,
        bristles: 40 * s,
    };
    let cluster = GraphFamily::ClusterGrid {
        rows: 4,
        cols: 4 * s,
        cluster: 6,
    };
    // Dense pockets over a sparse cut — the imbalance workload the
    // stage profiler is built to expose (`experiments profile`).
    let planted = GraphFamily::Planted {
        n: 160 * s,
        communities: 4,
        p_in: if s == 1 { 0.25 } else { 0.25 / s as f64 },
        p_out: 0.01 / s as f64,
    };
    vec![
        // MIS across every family, alternating/pairing engines so each
        // family and all four engine backends appear.
        Scenario::new(gnp.clone()).seed(42),
        Scenario::new(gnp.clone()).seed(42).sharded(sharded),
        Scenario::new(gnp.clone()).seed(42).process(2),
        Scenario::new(power_law.clone()).k(2).seed(7),
        Scenario::new(power_law).k(2).seed(7).pooled(sharded),
        Scenario::new(geometric.clone()).seed(3),
        Scenario::new(geometric).seed(3).pooled(2),
        Scenario::new(hyperbolic).seed(17).pooled(sharded),
        Scenario::new(grid.clone()).k(2).sharded(sharded),
        Scenario::new(caterpillar).k(2),
        Scenario::new(broom).sharded(2),
        Scenario::new(cluster.clone()).k(2).sharded(sharded),
        Scenario::new(planted).seed(23).sharded(sharded),
        // Sparsification (Lemma 3.1) on structured topologies, both
        // engines.
        Scenario::new(torus.clone()).algorithm(Sparsify {
            derandomized: false,
        }),
        Scenario::new(torus.clone())
            .algorithm(Sparsify {
                derandomized: false,
            })
            .pooled(sharded),
        Scenario::new(torus.clone())
            .algorithm(Sparsify {
                derandomized: false,
            })
            .process(2),
        Scenario::new(cluster.clone()).k(2).algorithm(Sparsify {
            derandomized: false,
        }),
        // BeepingMIS (Lemma 8.2) — per-component, so it also covers the
        // possibly-disconnected geometric family; both engines.
        Scenario::new(GraphFamily::Gnp {
            n: 128 * s,
            avg_deg: 7.0,
        })
        .seed(11)
        .algorithm(BeepingMis),
        Scenario::new(grid)
            .k(2)
            .seed(11)
            .algorithm(BeepingMis)
            .pooled(sharded),
        // The shattering MIS pipeline (Theorems 1.2/1.4), both
        // post-shattering variants, sharded.
        Scenario::new(GraphFamily::Gnp {
            n: 96 * s,
            avg_deg: 6.0,
        })
        .seed(13)
        .algorithm(ShatterMis { two_phase: false })
        .sharded(sharded),
        Scenario::new(cluster)
            .k(2)
            .seed(13)
            .algorithm(ShatterMis { two_phase: true }),
        // Ruling sets, now engine-generic: both engines appear.
        Scenario::new(GraphFamily::Gnp {
            n: 160 * s,
            avg_deg: 10.0,
        })
        .seed(5)
        .algorithm(BetaRulingSet { beta: 3 }),
        Scenario::new(GraphFamily::Gnp {
            n: 160 * s,
            avg_deg: 10.0,
        })
        .seed(5)
        .algorithm(BetaRulingSet { beta: 3 })
        .pooled(sharded),
        Scenario::new(GraphFamily::Grid {
            rows: 10,
            cols: 10 * s,
        })
        .k(2)
        .algorithm(DetRulingK2),
        Scenario::new(GraphFamily::Grid {
            rows: 10,
            cols: 10 * s,
        })
        .k(2)
        .algorithm(DetRulingK2)
        .pooled(2),
        // Network decomposition (Theorem A.1), both engines.
        Scenario::new(torus).k(2).algorithm(PowerNd),
        Scenario::new(GraphFamily::Caterpillar {
            spine: 60 * s,
            legs: 3,
        })
        .algorithm(PowerNd)
        .sharded(sharded),
    ]
}

/// A value in a spec file: integer, float, string, bool or a flat
/// inline table (`{ key = value, ... }` with scalar values only).
#[derive(Debug, Clone, PartialEq)]
enum SpecValue {
    Int(i64),
    Float(f64),
    Str(String),
    Bool(bool),
    Table(BTreeMap<String, SpecValue>),
}

impl SpecValue {
    fn type_name(&self) -> &'static str {
        match self {
            Self::Int(_) => "integer",
            Self::Float(_) => "float",
            Self::Str(_) => "string",
            Self::Bool(_) => "bool",
            Self::Table(_) => "inline table",
        }
    }
}

/// A spec-file parse failure with a line number.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpecError {
    /// 1-based line number of the offending scenario block or line.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for SpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "spec error at line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for SpecError {}

/// Parses a scenario suite from the TOML-subset spec format:
///
/// ```toml
/// [[scenario]]
/// family = "power_law"   # gnp | power_law | geometric | hyperbolic |
///                        # grid | torus | caterpillar | broom |
///                        # cluster_grid
/// n = 300
/// attach = 3
/// k = 2
/// seed = 7
/// algorithm = "luby_mis" # luby_mis | beeping_mis | shatter_mis |
///                        # shatter_mis_two_phase | sparsify |
///                        # sparsify_derandomized | beta_ruling |
///                        # det_ruling_k2 | power_nd
/// engine = "sharded"     # sequential | sharded | pooled | process
/// shards = 4
///
/// [[scenario]]
/// family = "grid"
/// rows = 12
/// cols = 12
/// engine = "process"     # wire options are process-engine-only:
/// tcp = true             # child links over loopback TCP
/// net = { latency_us = 200, bandwidth_bytes_per_s = 16777216, jitter_seed = 7 }
/// recovery = { max_retries = 3, backoff_ms = 0, checkpoint_every = 4 }
/// ```
///
/// Supported: `[[scenario]]` table headers, `key = value` with integer,
/// float, `"string"`, `true`/`false` and flat inline-table values
/// (scalars only — `net = { ... }` is the one consumer), `#` comments,
/// blank lines. Unknown keys are errors (typos must not silently change
/// an experiment).
///
/// # Errors
///
/// Returns the first [`SpecError`] encountered.
pub fn parse_suite(text: &str) -> Result<Vec<Scenario>, SpecError> {
    let mut scenarios = Vec::new();
    let mut current: Option<(usize, BTreeMap<String, (usize, SpecValue)>)> = None;
    for (i, raw) in text.lines().enumerate() {
        let line_no = i + 1;
        let line = match raw.split_once('#') {
            Some((before, _)) => before.trim(),
            None => raw.trim(),
        };
        if line.is_empty() {
            continue;
        }
        if line == "[[scenario]]" {
            if let Some((start, kv)) = current.take() {
                scenarios.push(scenario_from_kv(start, kv)?);
            }
            current = Some((line_no, BTreeMap::new()));
            continue;
        }
        let (key, value) = line.split_once('=').ok_or(SpecError {
            line: line_no,
            message: format!("expected `key = value` or `[[scenario]]`, got `{line}`"),
        })?;
        let key = key.trim().to_string();
        let value = parse_value(value.trim(), line_no)?;
        let Some((_, kv)) = current.as_mut() else {
            return Err(SpecError {
                line: line_no,
                message: "key outside a [[scenario]] block".into(),
            });
        };
        if kv.insert(key.clone(), (line_no, value)).is_some() {
            return Err(SpecError {
                line: line_no,
                message: format!("duplicate key `{key}`"),
            });
        }
    }
    if let Some((start, kv)) = current.take() {
        scenarios.push(scenario_from_kv(start, kv)?);
    }
    Ok(scenarios)
}

fn parse_value(text: &str, line: usize) -> Result<SpecValue, SpecError> {
    if let Some(stripped) = text.strip_prefix('{') {
        let inner = stripped.strip_suffix('}').ok_or(SpecError {
            line,
            message: format!("unterminated inline table `{text}`"),
        })?;
        let mut kv = BTreeMap::new();
        for entry in inner.split(',') {
            let entry = entry.trim();
            if entry.is_empty() {
                continue;
            }
            let (key, value) = entry.split_once('=').ok_or(SpecError {
                line,
                message: format!("expected `key = value` in inline table, got `{entry}`"),
            })?;
            let key = key.trim().to_string();
            let value = parse_value(value.trim(), line)?;
            if matches!(value, SpecValue::Table(_)) {
                return Err(SpecError {
                    line,
                    message: "nested inline tables are not supported".into(),
                });
            }
            if kv.insert(key.clone(), value).is_some() {
                return Err(SpecError {
                    line,
                    message: format!("duplicate key `{key}` in inline table"),
                });
            }
        }
        return Ok(SpecValue::Table(kv));
    }
    if let Some(stripped) = text.strip_prefix('"') {
        let inner = stripped.strip_suffix('"').ok_or(SpecError {
            line,
            message: format!("unterminated string `{text}`"),
        })?;
        return Ok(SpecValue::Str(inner.to_string()));
    }
    match text {
        "true" => return Ok(SpecValue::Bool(true)),
        "false" => return Ok(SpecValue::Bool(false)),
        _ => {}
    }
    if let Ok(v) = text.parse::<i64>() {
        return Ok(SpecValue::Int(v));
    }
    if let Ok(v) = text.parse::<f64>() {
        return Ok(SpecValue::Float(v));
    }
    Err(SpecError {
        line,
        message: format!("cannot parse value `{text}`"),
    })
}

/// Typed key extraction helpers over the parsed block. Keys are removed
/// as they are consumed; whatever remains at [`Block::finish`] is an
/// unknown key.
struct Block {
    line: usize,
    kv: BTreeMap<String, (usize, SpecValue)>,
}

impl Block {
    fn take(&mut self, key: &str) -> Option<(usize, SpecValue)> {
        self.kv.remove(key)
    }

    fn usize(&mut self, key: &str) -> Result<usize, SpecError> {
        match self.take(key) {
            Some((_, SpecValue::Int(v))) if v >= 0 => Ok(v as usize),
            Some((line, v)) => Err(SpecError {
                line,
                message: format!(
                    "`{key}` must be a non-negative integer, got {}",
                    v.type_name()
                ),
            }),
            None => Err(SpecError {
                line: self.line,
                message: format!("missing required key `{key}`"),
            }),
        }
    }

    fn usize_or(&mut self, key: &str, default: usize) -> Result<usize, SpecError> {
        match self.take(key) {
            Some((_, SpecValue::Int(v))) if v >= 0 => Ok(v as usize),
            Some((line, v)) => Err(SpecError {
                line,
                message: format!(
                    "`{key}` must be a non-negative integer, got {}",
                    v.type_name()
                ),
            }),
            None => Ok(default),
        }
    }

    fn f64(&mut self, key: &str) -> Result<f64, SpecError> {
        match self.take(key) {
            Some((_, SpecValue::Float(v))) => Ok(v),
            Some((_, SpecValue::Int(v))) => Ok(v as f64),
            Some((line, v)) => Err(SpecError {
                line,
                message: format!("`{key}` must be a number, got {}", v.type_name()),
            }),
            None => Err(SpecError {
                line: self.line,
                message: format!("missing required key `{key}`"),
            }),
        }
    }

    fn f64_or(&mut self, key: &str, default: f64) -> Result<f64, SpecError> {
        match self.take(key) {
            Some((_, SpecValue::Float(v))) => Ok(v),
            Some((_, SpecValue::Int(v))) => Ok(v as f64),
            Some((line, v)) => Err(SpecError {
                line,
                message: format!("`{key}` must be a number, got {}", v.type_name()),
            }),
            None => Ok(default),
        }
    }

    fn bool_or(&mut self, key: &str, default: bool) -> Result<bool, SpecError> {
        match self.take(key) {
            Some((_, SpecValue::Bool(v))) => Ok(v),
            Some((line, v)) => Err(SpecError {
                line,
                message: format!("`{key}` must be a bool, got {}", v.type_name()),
            }),
            None => Ok(default),
        }
    }

    /// The optional `net = { latency_us = N, ... }` inline table,
    /// decoded into a [`NetworkSpec`]. `latency_us` is required;
    /// `bandwidth_bytes_per_s` (0 = infinite) and `jitter_seed`
    /// (0 = no jitter) default to 0; unknown keys are errors.
    fn net_or(&mut self) -> Result<Option<NetworkSpec>, SpecError> {
        let Some((line, value)) = self.take("net") else {
            return Ok(None);
        };
        let SpecValue::Table(kv) = value else {
            return Err(SpecError {
                line,
                message: format!(
                    "`net` must be an inline table like \
                     `{{ latency_us = 200 }}`, got {}",
                    value.type_name()
                ),
            });
        };
        let mut inner = Block {
            line,
            kv: kv.into_iter().map(|(k, v)| (k, (line, v))).collect(),
        };
        let spec = NetworkSpec {
            latency_us: inner.usize("latency_us")? as u64,
            bandwidth_bytes_per_s: inner.usize_or("bandwidth_bytes_per_s", 0)? as u64,
            jitter_seed: inner.usize_or("jitter_seed", 0)? as u64,
        };
        if let Some((key, (line, _))) = inner.kv.into_iter().next() {
            return Err(SpecError {
                line,
                message: format!("unknown key `{key}` in `net` table"),
            });
        }
        Ok(Some(spec))
    }

    /// The optional `recovery = { max_retries = N, ... }` inline table,
    /// decoded into a [`RecoverySpec`]. Every key is optional (the
    /// [`RecoverySpec::default`] supervision applies), so
    /// `recovery = {}` is the shortest way to turn supervision on;
    /// unknown keys are errors.
    fn recovery_or(&mut self) -> Result<Option<RecoverySpec>, SpecError> {
        let Some((line, value)) = self.take("recovery") else {
            return Ok(None);
        };
        let SpecValue::Table(kv) = value else {
            return Err(SpecError {
                line,
                message: format!(
                    "`recovery` must be an inline table like \
                     `{{ max_retries = 3 }}`, got {}",
                    value.type_name()
                ),
            });
        };
        let mut inner = Block {
            line,
            kv: kv.into_iter().map(|(k, v)| (k, (line, v))).collect(),
        };
        let default = RecoverySpec::default();
        let spec = RecoverySpec {
            max_retries: inner.usize_or("max_retries", default.max_retries as usize)? as u32,
            backoff_ms: inner.usize_or("backoff_ms", default.backoff_ms as usize)? as u64,
            checkpoint_every: inner
                .usize_or("checkpoint_every", default.checkpoint_every as usize)?
                as u32,
        };
        if let Some((key, (line, _))) = inner.kv.into_iter().next() {
            return Err(SpecError {
                line,
                message: format!("unknown key `{key}` in `recovery` table"),
            });
        }
        Ok(Some(spec))
    }

    fn str_or(&mut self, key: &str, default: &str) -> Result<String, SpecError> {
        match self.take(key) {
            Some((_, SpecValue::Str(v))) => Ok(v),
            Some((line, v)) => Err(SpecError {
                line,
                message: format!("`{key}` must be a string, got {}", v.type_name()),
            }),
            None => Ok(default.to_string()),
        }
    }

    fn finish(self) -> Result<(), SpecError> {
        if let Some((key, (line, _))) = self.kv.into_iter().next() {
            return Err(SpecError {
                line,
                message: format!("unknown key `{key}` for this scenario"),
            });
        }
        Ok(())
    }
}

fn scenario_from_kv(
    line: usize,
    kv: BTreeMap<String, (usize, SpecValue)>,
) -> Result<Scenario, SpecError> {
    let mut b = Block { line, kv };
    let family_name = {
        match b.take("family") {
            Some((_, SpecValue::Str(v))) => v,
            Some((l, v)) => {
                return Err(SpecError {
                    line: l,
                    message: format!("`family` must be a string, got {}", v.type_name()),
                })
            }
            None => {
                return Err(SpecError {
                    line,
                    message: "missing required key `family`".into(),
                })
            }
        }
    };
    let family = match family_name.as_str() {
        "gnp" => GraphFamily::Gnp {
            n: b.usize("n")?,
            avg_deg: b.f64("avg_deg")?,
        },
        "power_law" => GraphFamily::PowerLaw {
            n: b.usize("n")?,
            attach: b.usize("attach")?,
        },
        "geometric" => GraphFamily::Geometric {
            n: b.usize("n")?,
            radius: b.f64("radius")?,
        },
        "hyperbolic" => GraphFamily::Hyperbolic {
            n: b.usize("n")?,
            avg_deg: b.f64("avg_deg")?,
            alpha: b.f64_or("alpha", 0.75)?,
        },
        "grid" => GraphFamily::Grid {
            rows: b.usize("rows")?,
            cols: b.usize("cols")?,
        },
        "torus" => GraphFamily::Torus {
            rows: b.usize("rows")?,
            cols: b.usize("cols")?,
        },
        "caterpillar" => GraphFamily::Caterpillar {
            spine: b.usize("spine")?,
            legs: b.usize("legs")?,
        },
        "broom" => GraphFamily::Broom {
            handle: b.usize("handle")?,
            bristles: b.usize("bristles")?,
        },
        "cluster_grid" => GraphFamily::ClusterGrid {
            rows: b.usize("rows")?,
            cols: b.usize("cols")?,
            cluster: b.usize("cluster")?,
        },
        "planted" => GraphFamily::Planted {
            n: b.usize("n")?,
            communities: b.usize("communities")?,
            p_in: b.f64("p_in")?,
            p_out: b.f64("p_out")?,
        },
        other => {
            return Err(SpecError {
                line,
                message: format!("unknown family `{other}`"),
            })
        }
    };
    let algorithm = match b.str_or("algorithm", "luby_mis")?.as_str() {
        "luby_mis" => AlgorithmSpec::LubyMis,
        "beeping_mis" => AlgorithmSpec::BeepingMis,
        "shatter_mis" => AlgorithmSpec::ShatterMis {
            two_phase: b.bool_or("two_phase", false)?,
        },
        "shatter_mis_two_phase" => {
            // A redundant-but-consistent `two_phase = true` is fine; a
            // contradictory `two_phase = false` is an error, not a
            // silent override.
            if !b.bool_or("two_phase", true)? {
                return Err(SpecError {
                    line,
                    message: "`two_phase = false` contradicts algorithm \
                              `shatter_mis_two_phase`"
                        .into(),
                });
            }
            AlgorithmSpec::ShatterMis { two_phase: true }
        }
        "sparsify" => AlgorithmSpec::Sparsify {
            derandomized: false,
        },
        "sparsify_derandomized" => AlgorithmSpec::Sparsify { derandomized: true },
        "beta_ruling" => AlgorithmSpec::BetaRulingSet {
            beta: b.usize_or("beta", 2)?,
        },
        "det_ruling_k2" => AlgorithmSpec::DetRulingK2,
        "power_nd" => AlgorithmSpec::PowerNd,
        other => {
            return Err(SpecError {
                line,
                message: format!("unknown algorithm `{other}`"),
            })
        }
    };
    let engine = match b.str_or("engine", "sequential")?.as_str() {
        "sequential" => EngineSpec::Sequential,
        "sharded" => EngineSpec::Sharded {
            shards: b.usize_or("shards", 4)?,
        },
        "pooled" => EngineSpec::Pooled {
            shards: b.usize_or("shards", 4)?,
        },
        "process" => EngineSpec::Process {
            shards: b.usize_or("shards", 4)?,
        },
        other => {
            return Err(SpecError {
                line,
                message: format!("unknown engine `{other}`"),
            })
        }
    };
    let scenario = Scenario {
        family,
        k: b.usize_or("k", 1)?,
        seed: b.usize_or("seed", 1)? as u64,
        algorithm,
        engine,
        net: b.net_or()?,
        tcp: b.bool_or("tcp", false)?,
        recovery: b.recovery_or()?,
    };
    b.finish()?;
    scenario
        .validate_spec()
        .map_err(|message| SpecError { line, message })?;
    Ok(scenario)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_and_names() {
        let sc = Scenario::new(GraphFamily::PowerLaw { n: 300, attach: 3 })
            .k(2)
            .seed(7)
            .sharded(4);
        assert_eq!(sc.name(), "power_law(n=300,attach=3)/k2/luby_mis/sharded4");
        assert!(sc.validate_spec().is_ok());
        let sc = sc.sequential().algorithm(AlgorithmSpec::DetRulingK2);
        assert_eq!(
            sc.name(),
            "power_law(n=300,attach=3)/k2/det_ruling_k2/sequential"
        );
    }

    #[test]
    fn every_algorithm_is_valid_on_every_engine() {
        // The PR-3 step-API port lifted the old sequential-only
        // restriction: algorithm × engine combinations all validate now.
        let algorithms = [
            AlgorithmSpec::LubyMis,
            AlgorithmSpec::BeepingMis,
            AlgorithmSpec::ShatterMis { two_phase: false },
            AlgorithmSpec::ShatterMis { two_phase: true },
            AlgorithmSpec::Sparsify { derandomized: true },
            AlgorithmSpec::BetaRulingSet { beta: 3 },
            AlgorithmSpec::DetRulingK2,
            AlgorithmSpec::PowerNd,
        ];
        for algorithm in algorithms {
            for sc in [
                Scenario::new(GraphFamily::Grid { rows: 4, cols: 4 }).algorithm(algorithm.clone()),
                Scenario::new(GraphFamily::Grid { rows: 4, cols: 4 })
                    .algorithm(algorithm.clone())
                    .sharded(2),
            ] {
                assert!(sc.validate_spec().is_ok(), "{} rejected", sc.name());
            }
        }
    }

    #[test]
    fn parses_spec_file() {
        let text = r#"
# two scenarios
[[scenario]]
family = "power_law"
n = 300
attach = 3
k = 2
seed = 7
algorithm = "luby_mis"
engine = "sharded"
shards = 4

[[scenario]]
family = "torus"
rows = 12
cols = 12
algorithm = "sparsify"   # randomized
"#;
        let suite = parse_suite(text).unwrap();
        assert_eq!(suite.len(), 2);
        assert_eq!(
            suite[0],
            Scenario::new(GraphFamily::PowerLaw { n: 300, attach: 3 })
                .k(2)
                .seed(7)
                .sharded(4)
        );
        assert_eq!(
            suite[1],
            Scenario::new(GraphFamily::Torus { rows: 12, cols: 12 }).algorithm(
                AlgorithmSpec::Sparsify {
                    derandomized: false,
                }
            )
        );
    }

    #[test]
    fn planted_family_parses_builds_and_names() {
        let suite = parse_suite(
            "[[scenario]]\nfamily = \"planted\"\nn = 60\ncommunities = 3\n\
             p_in = 0.4\np_out = 0.02\nseed = 9\nengine = \"pooled\"\nshards = 2\n",
        )
        .unwrap();
        assert_eq!(suite.len(), 1);
        let family = GraphFamily::Planted {
            n: 60,
            communities: 3,
            p_in: 0.4,
            p_out: 0.02,
        };
        assert_eq!(suite[0], Scenario::new(family.clone()).seed(9).pooled(2));
        assert_eq!(family.id(), "planted");
        assert_eq!(family.label(), "planted(n=60,c=3,pin=0.4,pout=0.02)");
        let g = family.build(9);
        assert_eq!(g.n(), 60);
        assert!(g.m() > 0);
        let missing = parse_suite("[[scenario]]\nfamily = \"planted\"\nn = 60\ncommunities = 3\n")
            .unwrap_err();
        assert!(missing.message.contains("p_in"), "{missing}");
    }

    #[test]
    fn spec_errors_are_located() {
        let missing = parse_suite("[[scenario]]\nfamily = \"gnp\"\nn = 100\n").unwrap_err();
        assert!(missing.message.contains("avg_deg"), "{missing}");
        let unknown =
            parse_suite("[[scenario]]\nfamily = \"grid\"\nrows = 3\ncols = 3\nbogus = 1\n")
                .unwrap_err();
        assert!(unknown.message.contains("bogus"), "{unknown}");
        assert_eq!(unknown.line, 5);
        let stray = parse_suite("n = 100\n").unwrap_err();
        assert!(stray.message.contains("outside"), "{stray}");
        let badval = parse_suite("[[scenario]]\nfamily = \"gnp\"\nn = oops\n").unwrap_err();
        assert!(badval.message.contains("oops"), "{badval}");
    }

    #[test]
    fn formerly_sequential_only_specs_now_parse_sharded() {
        // These spec files were rejected before the PR-3 port; they are
        // valid scenarios now.
        let suite = parse_suite(
            "[[scenario]]\nfamily = \"grid\"\nrows = 3\ncols = 3\n\
             algorithm = \"det_ruling_k2\"\nengine = \"sharded\"\n\n\
             [[scenario]]\nfamily = \"grid\"\nrows = 3\ncols = 3\n\
             algorithm = \"shatter_mis\"\ntwo_phase = true\nengine = \"sharded\"\nshards = 8\n\n\
             [[scenario]]\nfamily = \"torus\"\nrows = 4\ncols = 4\n\
             algorithm = \"power_nd\"\nengine = \"sharded\"\n",
        )
        .unwrap();
        assert_eq!(suite.len(), 3);
        assert_eq!(suite[0].algorithm, AlgorithmSpec::DetRulingK2);
        // shatter_mis_two_phase tolerates a consistent explicit key and
        // rejects a contradictory one.
        assert!(parse_suite(
            "[[scenario]]\nfamily = \"grid\"\nrows = 3\ncols = 3\n\
             algorithm = \"shatter_mis_two_phase\"\ntwo_phase = true\n"
        )
        .is_ok());
        let contradiction = parse_suite(
            "[[scenario]]\nfamily = \"grid\"\nrows = 3\ncols = 3\n\
             algorithm = \"shatter_mis_two_phase\"\ntwo_phase = false\n",
        )
        .unwrap_err();
        assert!(
            contradiction.message.contains("contradicts"),
            "{contradiction}"
        );
        assert_eq!(
            suite[1].algorithm,
            AlgorithmSpec::ShatterMis { two_phase: true }
        );
        assert_eq!(suite[1].engine, EngineSpec::Sharded { shards: 8 });
        assert_eq!(suite[2].algorithm, AlgorithmSpec::PowerNd);
    }

    #[test]
    fn hyperbolic_family_parses_builds_and_is_in_the_suite() {
        let suite = parse_suite(
            "[[scenario]]\nfamily = \"hyperbolic\"\nn = 200\navg_deg = 6.0\nseed = 9\n\n\
             [[scenario]]\nfamily = \"hyperbolic\"\nn = 200\navg_deg = 6.0\nalpha = 1.1\n",
        )
        .unwrap();
        assert_eq!(
            suite[0].family,
            GraphFamily::Hyperbolic {
                n: 200,
                avg_deg: 6.0,
                alpha: 0.75, // the spec default
            }
        );
        assert_eq!(
            suite[1].family,
            GraphFamily::Hyperbolic {
                n: 200,
                avg_deg: 6.0,
                alpha: 1.1,
            }
        );
        let g = suite[0].family.build(suite[0].seed);
        assert_eq!(g.n(), 200);
        assert!(g.m() > 0);
        assert_eq!(
            suite[0].name(),
            "hyperbolic(n=200,d=6,a=0.75)/k1/luby_mis/sequential"
        );
        // And the smoke suite carries a hyperbolic row.
        assert!(builtin_suite(SuiteProfile::Smoke)
            .iter()
            .any(|sc| sc.family.id() == "hyperbolic"));
    }

    #[test]
    fn builtin_suites_are_well_formed() {
        for profile in [SuiteProfile::Smoke, SuiteProfile::Full] {
            let suite = builtin_suite(profile);
            assert!(suite.len() >= 10);
            for sc in &suite {
                sc.validate_spec().unwrap();
            }
            let families: std::collections::BTreeSet<&str> =
                suite.iter().map(|s| s.family.id()).collect();
            assert!(families.len() >= 5, "families: {families:?}");
            assert!(
                families.contains("planted"),
                "the planted-community row must stay in both profiles"
            );
            assert!(suite.iter().any(|s| s.engine == EngineSpec::Sequential));
            assert!(suite
                .iter()
                .any(|s| matches!(s.engine, EngineSpec::Sharded { .. })));
            assert!(suite
                .iter()
                .any(|s| matches!(s.engine, EngineSpec::Pooled { .. })));
            assert!(suite
                .iter()
                .any(|s| matches!(s.engine, EngineSpec::Process { .. })));
        }
    }

    #[test]
    fn wire_options_parse_build_and_name() {
        let suite = parse_suite(
            "[[scenario]]\nfamily = \"grid\"\nrows = 4\ncols = 4\n\
             engine = \"process\"\nshards = 2\ntcp = true\n\
             net = { latency_us = 200, bandwidth_bytes_per_s = 16777216, jitter_seed = 7 }\n\n\
             [[scenario]]\nfamily = \"grid\"\nrows = 4\ncols = 4\n\
             engine = \"process\"\nnet = { latency_us = 50 } # defaults: bw inf, no jitter\n",
        )
        .unwrap();
        assert_eq!(
            suite[0],
            Scenario::new(GraphFamily::Grid { rows: 4, cols: 4 })
                .process(2)
                .tcp()
                .network(NetworkSpec {
                    latency_us: 200,
                    bandwidth_bytes_per_s: 16 << 20,
                    jitter_seed: 7,
                })
        );
        assert_eq!(
            suite[0].name(),
            "grid(4x4)/k1/luby_mis/process2+tcp+net(lat=200us,bw=16777216,jit=7)"
        );
        assert_eq!(
            suite[1].net,
            Some(NetworkSpec {
                latency_us: 50,
                bandwidth_bytes_per_s: 0,
                jitter_seed: 0,
            })
        );
        assert!(!suite[1].tcp);
        assert_eq!(
            suite[1].name(),
            "grid(4x4)/k1/luby_mis/process4+net(lat=50us,bw=0,jit=0)"
        );
    }

    #[test]
    fn wire_options_are_process_engine_only() {
        let shaped = parse_suite(
            "[[scenario]]\nfamily = \"grid\"\nrows = 4\ncols = 4\n\
             engine = \"sharded\"\nnet = { latency_us = 10 }\n",
        )
        .unwrap_err();
        assert!(shaped.message.contains("process engine"), "{shaped}");
        let tcp = parse_suite("[[scenario]]\nfamily = \"grid\"\nrows = 4\ncols = 4\ntcp = true\n")
            .unwrap_err();
        assert!(tcp.message.contains("process engine"), "{tcp}");
        // And through the builder path too.
        let sc = Scenario::new(GraphFamily::Grid { rows: 4, cols: 4 }).network(NetworkSpec {
            latency_us: 10,
            bandwidth_bytes_per_s: 0,
            jitter_seed: 0,
        });
        assert!(sc.validate_spec().is_err());
    }

    #[test]
    fn recovery_spec_parses_defaults_and_stays_out_of_the_name() {
        let suite = parse_suite(
            "[[scenario]]\nfamily = \"grid\"\nrows = 4\ncols = 4\n\
             engine = \"process\"\nshards = 2\n\
             recovery = { max_retries = 5, backoff_ms = 10, checkpoint_every = 2 }\n\n\
             [[scenario]]\nfamily = \"grid\"\nrows = 4\ncols = 4\n\
             engine = \"process\"\nrecovery = {}\n",
        )
        .unwrap();
        assert_eq!(
            suite[0],
            Scenario::new(GraphFamily::Grid { rows: 4, cols: 4 })
                .process(2)
                .recovery(RecoverySpec {
                    max_retries: 5,
                    backoff_ms: 10,
                    checkpoint_every: 2,
                })
        );
        // Recovery is operational, not semantic: the run name (and so
        // the manifest diff identity) is the plain process run's.
        assert_eq!(suite[0].name(), "grid(4x4)/k1/luby_mis/process2");
        // `recovery = {}` turns supervision on with the defaults.
        assert_eq!(suite[1].recovery, Some(RecoverySpec::default()));
        assert_eq!(suite[1].recovery.unwrap().max_retries, 3);
    }

    #[test]
    fn recovery_spec_is_process_engine_only_and_validated() {
        let err = parse_suite(
            "[[scenario]]\nfamily = \"grid\"\nrows = 4\ncols = 4\n\
             engine = \"sharded\"\nrecovery = {}\n",
        )
        .unwrap_err();
        assert!(err.message.contains("process engine"), "{err}");
        let err = parse_suite(
            "[[scenario]]\nfamily = \"grid\"\nrows = 4\ncols = 4\n\
             engine = \"process\"\nrecovery = { max_retries = 0 }\n",
        )
        .unwrap_err();
        assert!(err.message.contains("max_retries"), "{err}");
        let err = parse_suite(
            "[[scenario]]\nfamily = \"grid\"\nrows = 4\ncols = 4\n\
             engine = \"process\"\nrecovery = { bogus = 1 }\n",
        )
        .unwrap_err();
        assert!(err.message.contains("bogus"), "{err}");
        let err = parse_suite(
            "[[scenario]]\nfamily = \"grid\"\nrows = 4\ncols = 4\n\
             engine = \"process\"\nrecovery = 3\n",
        )
        .unwrap_err();
        assert!(err.message.contains("inline table"), "{err}");
    }

    #[test]
    fn net_table_rejects_malformed_specs() {
        let base = "[[scenario]]\nfamily = \"grid\"\nrows = 4\ncols = 4\nengine = \"process\"\n";
        for (bad, needle) in [
            ("net = { latency_us = 10, bogus = 1 }\n", "bogus"),
            ("net = { bandwidth_bytes_per_s = 8 }\n", "latency_us"),
            ("net = { latency_us = 10\n", "unterminated"),
            ("net = 10\n", "inline table"),
            ("net = { latency_us = 10, latency_us = 20 }\n", "duplicate"),
            ("net = { latency_us }\n", "key = value"),
        ] {
            let err = parse_suite(&format!("{base}{bad}")).unwrap_err();
            assert!(err.message.contains(needle), "{bad:?}: {err}");
        }
    }

    #[test]
    fn process_engine_parses_and_names() {
        let suite = parse_suite(
            "[[scenario]]\nfamily = \"grid\"\nrows = 4\ncols = 4\n\
             engine = \"process\"\nshards = 3\n",
        )
        .unwrap();
        assert_eq!(suite[0].engine, EngineSpec::Process { shards: 3 });
        assert_eq!(suite[0].name(), "grid(4x4)/k1/luby_mis/process3");
    }

    #[test]
    fn pooled_engine_parses_and_names() {
        let suite = parse_suite(
            "[[scenario]]\nfamily = \"grid\"\nrows = 4\ncols = 4\n\
             engine = \"pooled\"\nshards = 3\n\n\
             [[scenario]]\nfamily = \"grid\"\nrows = 4\ncols = 4\n\
             engine = \"pooled\"\n",
        )
        .unwrap();
        assert_eq!(suite[0].engine, EngineSpec::Pooled { shards: 3 });
        assert_eq!(suite[0].name(), "grid(4x4)/k1/luby_mis/pooled3");
        // `shards` defaults like the sharded engine's.
        assert_eq!(suite[1].engine, EngineSpec::Pooled { shards: 4 });
        let sc = Scenario::new(GraphFamily::Grid { rows: 4, cols: 4 }).pooled(0);
        assert!(sc.validate_spec().is_err(), "zero shards must be rejected");
    }
}
