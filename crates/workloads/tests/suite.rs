//! Acceptance tests for the workload subsystem: the built-in smoke suite
//! satisfies the coverage bar (≥ 10 scenarios, ≥ 5 graph families, both
//! engines), every run passes its `check` validation, the JSON manifest
//! round-trips exactly, and every family behaves identically on both
//! engine backends.

use powersparse_workloads::{
    builtin_suite, run_scenario, run_scenario_with, run_suite, AlgorithmSpec, EngineSpec,
    GraphFamily, PhaseWall, Repeat, RunOptions, RunRecord, Scenario, SuiteManifest, SuiteProfile,
    WallStats,
};
use std::collections::BTreeSet;

/// Scenario coordinates for every algorithm ported to the step API in
/// PR 3 — the seeded-determinism surface below runs each of them.
fn ported_algorithm_scenarios() -> Vec<Scenario> {
    vec![
        Scenario::new(GraphFamily::Gnp {
            n: 80,
            avg_deg: 6.0,
        })
        .seed(17)
        .algorithm(AlgorithmSpec::BeepingMis),
        Scenario::new(GraphFamily::Gnp {
            n: 72,
            avg_deg: 5.0,
        })
        .seed(23)
        .algorithm(AlgorithmSpec::ShatterMis { two_phase: false }),
        Scenario::new(GraphFamily::ClusterGrid {
            rows: 3,
            cols: 3,
            cluster: 4,
        })
        .k(2)
        .seed(23)
        .algorithm(AlgorithmSpec::ShatterMis { two_phase: true }),
        Scenario::new(GraphFamily::Gnp {
            n: 84,
            avg_deg: 7.0,
        })
        .seed(31)
        .algorithm(AlgorithmSpec::BetaRulingSet { beta: 3 }),
        Scenario::new(GraphFamily::Grid { rows: 7, cols: 8 })
            .k(2)
            .algorithm(AlgorithmSpec::DetRulingK2),
        Scenario::new(GraphFamily::Torus { rows: 7, cols: 7 })
            .k(2)
            .algorithm(AlgorithmSpec::PowerNd),
    ]
}

/// Strips the only nondeterministic fields (wall clock and its
/// statistics) so records can be compared as JSON bytes.
fn dewalled(mut rec: RunRecord) -> RunRecord {
    rec.wall = PhaseWall::default();
    rec.wall_stats = WallStats::single(0);
    rec
}

#[test]
fn smoke_suite_runs_validates_and_round_trips() {
    let scenarios = builtin_suite(SuiteProfile::Smoke);
    assert!(
        scenarios.len() >= 10,
        "smoke suite has only {} scenarios",
        scenarios.len()
    );
    let families: BTreeSet<&str> = scenarios.iter().map(|s| s.family.id()).collect();
    assert!(families.len() >= 5, "smoke suite spans only {families:?}");
    assert!(
        scenarios.iter().any(|s| s.engine == EngineSpec::Sequential),
        "no sequential scenario"
    );
    assert!(
        scenarios
            .iter()
            .any(|s| matches!(s.engine, EngineSpec::Sharded { .. })),
        "no sharded scenario"
    );
    // Scenario names are unique — a matrix with duplicates would
    // silently overwrite rows in downstream diff tooling.
    let names: BTreeSet<String> = scenarios.iter().map(Scenario::name).collect();
    assert_eq!(names.len(), scenarios.len(), "duplicate scenario names");

    let manifest = run_suite("smoke", &scenarios).expect("suite must execute");
    assert_eq!(manifest.runs.len(), scenarios.len());
    for run in &manifest.runs {
        assert!(
            run.validation.passed,
            "{} failed validation: {}",
            run.name, run.validation.detail
        );
        assert!(run.rounds > 0, "{} ran zero rounds", run.name);
        assert!(run.messages > 0, "{} delivered no messages", run.name);
        assert!(run.peak_queue_depth > 0, "{} saw empty queues", run.name);
    }

    // The serde-style round trip: serialize, parse, compare, and the
    // re-serialization is byte-identical.
    let text = manifest.to_json_string();
    let back = SuiteManifest::parse(&text).expect("manifest must parse");
    assert_eq!(back, manifest);
    assert_eq!(back.to_json_string(), text);
}

#[test]
fn every_family_is_engine_parity_clean() {
    // One scenario per family, run on both engines: identical costs and
    // outputs (the engine contract, exercised through the runner path).
    let per_family = [
        Scenario::new(GraphFamily::Gnp {
            n: 96,
            avg_deg: 6.0,
        })
        .seed(42),
        Scenario::new(GraphFamily::PowerLaw { n: 90, attach: 2 })
            .k(2)
            .seed(7),
        Scenario::new(GraphFamily::Geometric {
            n: 100,
            radius: 0.2,
        })
        .seed(3),
        Scenario::new(GraphFamily::Grid { rows: 8, cols: 7 }).k(2),
        Scenario::new(GraphFamily::Torus { rows: 6, cols: 8 }),
        Scenario::new(GraphFamily::Caterpillar { spine: 20, legs: 2 }).k(2),
        Scenario::new(GraphFamily::Broom {
            handle: 30,
            bristles: 15,
        }),
        Scenario::new(GraphFamily::ClusterGrid {
            rows: 3,
            cols: 3,
            cluster: 4,
        })
        .k(2),
    ];
    for base in per_family {
        let seq = run_scenario(&base.clone().sequential()).unwrap();
        let par = run_scenario(&base.clone().sharded(3)).unwrap();
        assert!(
            seq.validation.passed,
            "{}: {}",
            seq.name, seq.validation.detail
        );
        assert!(
            par.validation.passed,
            "{}: {}",
            par.name, par.validation.detail
        );
        for (label, a, b) in [
            ("rounds", seq.rounds, par.rounds),
            ("messages", seq.messages, par.messages),
            ("bits", seq.bits, par.bits),
            (
                "peak_queue_depth",
                seq.peak_queue_depth,
                par.peak_queue_depth,
            ),
            ("output_size", seq.output_size, par.output_size),
        ] {
            assert_eq!(a, b, "{}: {label} diverged across engines", base.name());
        }
    }
}

#[test]
fn same_seed_same_manifest_bytes_across_runs() {
    // Seeded determinism for every newly ported algorithm: executing the
    // identical scenario twice yields byte-identical manifest JSON (wall
    // clock aside — the only nondeterministic field).
    for sc in ported_algorithm_scenarios() {
        for engined in [sc.clone().sequential(), sc.clone().sharded(4)] {
            let a = run_scenario(&engined).unwrap();
            let b = run_scenario(&engined).unwrap();
            assert!(a.validation.passed, "{}: {}", a.name, a.validation.detail);
            let a = dewalled(a);
            let b = dewalled(b);
            assert_eq!(
                a.to_json().to_string_pretty(),
                b.to_json().to_string_pretty(),
                "{} not byte-deterministic across runs",
                engined.name()
            );
        }
    }
}

#[test]
fn same_seed_same_record_across_engines() {
    // The same seeded scenario on the sequential reference and on the
    // sharded engine: once the engine coordinates (name/engine/shards)
    // are aligned, the records serialize to identical JSON bytes —
    // outputs, validation detail (which embeds the output cardinality)
    // and every cost counter included.
    for sc in ported_algorithm_scenarios() {
        let seq = run_scenario(&sc.clone().sequential()).unwrap();
        let par = run_scenario(&sc.clone().sharded(3)).unwrap();
        assert!(
            seq.validation.passed,
            "{}: {}",
            seq.name, seq.validation.detail
        );
        let mut par = dewalled(par);
        par.name = seq.name.clone();
        par.engine = seq.engine.clone();
        par.shards = seq.shards;
        assert_eq!(
            dewalled(seq).to_json().to_string_pretty(),
            par.to_json().to_string_pretty(),
            "{} diverged across engines",
            sc.name()
        );
    }
}

#[test]
fn same_seed_same_suite_manifest_bytes() {
    // Whole-suite determinism: two executions of the same scenario list
    // produce byte-identical SuiteManifest JSON after the wall fields
    // are zeroed.
    let scenarios = ported_algorithm_scenarios();
    let strip = |m: SuiteManifest| SuiteManifest {
        suite: m.suite,
        runs: m.runs.into_iter().map(dewalled).collect(),
    };
    let a = strip(run_suite("det", &scenarios).unwrap());
    let b = strip(run_suite("det", &scenarios).unwrap());
    assert_eq!(a.to_json_string(), b.to_json_string());
}

#[test]
fn repeated_run_statistics_round_trip_exactly_through_json() {
    // The acceptance bar for the repeat-run statistics: a --repeats ≥ 3
    // run emits mean/ci95 wall stats (plus a bounded trace) that
    // survive the JSON parser bit-for-bit, fractional values included.
    let sc = Scenario::new(GraphFamily::Grid { rows: 6, cols: 6 })
        .k(2)
        .seed(3)
        .sharded(2);
    let opts = RunOptions {
        repeat: Repeat {
            invocations: 3,
            iterations: 1,
            warmup: 1,
        },
        trace: Some(16),
        profile: false,
        chaos: None,
    };
    let rec = run_scenario_with(&sc, &opts).unwrap();
    assert!(rec.validation.passed, "{}", rec.validation.detail);
    assert_eq!(rec.wall_stats.samples, 3);
    assert!(rec.wall_stats.min_us <= rec.wall_stats.mean_us);
    assert!(rec.wall_stats.mean_us <= rec.wall_stats.max_us);
    let trace = rec.trace.as_ref().expect("trace requested");
    assert!(!trace.is_empty() && trace.len() <= 16);

    let manifest = SuiteManifest {
        suite: "repeats".into(),
        runs: vec![rec],
    };
    let text = manifest.to_json_string();
    let back = SuiteManifest::parse(&text).expect("manifest must parse");
    assert_eq!(back, manifest, "wall stats / trace did not round-trip");
    assert_eq!(back.to_json_string(), text, "re-serialization not stable");
    let stats = &back.runs[0].wall_stats;
    assert_eq!(
        stats.mean_us.to_bits(),
        manifest.runs[0].wall_stats.mean_us.to_bits()
    );
    assert_eq!(
        stats.ci95_us.to_bits(),
        manifest.runs[0].wall_stats.ci95_us.to_bits()
    );
}

#[test]
fn spec_file_drives_the_runner() {
    let spec = r#"
[[scenario]]
family = "broom"
handle = 24
bristles = 12
k = 2
seed = 5
engine = "sharded"
shards = 2

[[scenario]]
family = "cluster_grid"
rows = 3
cols = 3
cluster = 3
algorithm = "sparsify"
"#;
    let scenarios = powersparse_workloads::parse_suite(spec).unwrap();
    let manifest = run_suite("custom", &scenarios).unwrap();
    assert!(manifest.all_passed());
    assert_eq!(manifest.runs[0].family, "broom");
    assert_eq!(manifest.runs[0].shards, 2);
    assert_eq!(manifest.runs[1].algorithm, "sparsify");
}
