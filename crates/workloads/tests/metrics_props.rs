//! Property tests for the `Metrics` merge invariants across engine
//! backends (the satellite of the pooled-engine PR):
//!
//! * `messages` and `bits` are **monotone per round** on every backend —
//!   merging shard-local counters at a barrier can only add.
//! * `peak_queue_depth` never exceeds the total delivered messages once
//!   a phase has settled (every message counted in a queue snapshot is
//!   eventually delivered on that edge).
//! * On random scenarios (family × k × shards), the sharded, pooled
//!   and multi-process backends produce **identical** `RunRecord`
//!   counters — and all of them match the sequential reference.

use powersparse_congest::engine::{RoundEngine, RoundPhase};
use powersparse_congest::sim::{SimConfig, Simulator};
use powersparse_engine::{PooledSimulator, ProcessSimulator, ShardedSimulator};
use powersparse_graphs::generators;
use powersparse_workloads::{run_scenario, AlgorithmSpec, GraphFamily, Scenario};
use proptest::prelude::*;

/// A random small graph family instance, deterministic per pick/seed.
fn pick_family(pick: usize, n: usize) -> GraphFamily {
    match pick % 6 {
        0 => GraphFamily::Gnp { n, avg_deg: 6.0 },
        1 => GraphFamily::PowerLaw { n, attach: 2 },
        2 => GraphFamily::Grid {
            rows: 6,
            cols: n / 6 + 2,
        },
        3 => GraphFamily::Torus {
            rows: 6,
            cols: n / 6 + 2,
        },
        4 => GraphFamily::Caterpillar {
            spine: n / 3 + 2,
            legs: 2,
        },
        _ => GraphFamily::ClusterGrid {
            rows: 3,
            cols: n / 24 + 1,
            cluster: 4,
        },
    }
}

/// A settled algorithm choice (all suite algorithms drain their phases,
/// so the peak-vs-messages invariant is well-defined at the end).
fn pick_algorithm(pick: usize) -> AlgorithmSpec {
    match pick % 4 {
        0 => AlgorithmSpec::LubyMis,
        1 => AlgorithmSpec::BeepingMis,
        2 => AlgorithmSpec::BetaRulingSet { beta: 2 },
        _ => AlgorithmSpec::Sparsify {
            derandomized: false,
        },
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 10, ..ProptestConfig::default() })]

    /// Random scenario, four backends: identical counters everywhere,
    /// and `peak_queue_depth ≤ messages` once settled.
    #[test]
    fn all_backend_metrics_identical_on_random_scenarios(
        fam in 0usize..6,
        alg in 0usize..4,
        k in 1usize..3,
        shards in 1usize..7,
        n in 48usize..120,
        seed in 0u64..500,
    ) {
        let base = Scenario::new(pick_family(fam, n))
            .k(k)
            .seed(seed)
            .algorithm(pick_algorithm(alg));
        let seq = run_scenario(&base.clone().sequential()).unwrap();
        let sha = run_scenario(&base.clone().sharded(shards)).unwrap();
        let poo = run_scenario(&base.clone().pooled(shards)).unwrap();
        let pro = run_scenario(&base.clone().process(shards)).unwrap();
        prop_assert!(seq.validation.passed, "{}: {}", seq.name, seq.validation.detail);
        for (label, a, rest) in [
            ("rounds", seq.rounds, [sha.rounds, poo.rounds, pro.rounds]),
            ("charged_rounds", seq.charged_rounds,
                [sha.charged_rounds, poo.charged_rounds, pro.charged_rounds]),
            ("messages", seq.messages, [sha.messages, poo.messages, pro.messages]),
            ("bits", seq.bits, [sha.bits, poo.bits, pro.bits]),
            ("peak_queue_depth", seq.peak_queue_depth,
                [sha.peak_queue_depth, poo.peak_queue_depth, pro.peak_queue_depth]),
            ("output_size", seq.output_size,
                [sha.output_size, poo.output_size, pro.output_size]),
        ] {
            for (engine, b) in ["sharded", "pooled", "process"].iter().zip(rest) {
                prop_assert_eq!(
                    a, b,
                    "{}: {} diverged sequential vs {}", base.name(), label, engine
                );
            }
        }
        prop_assert!(
            seq.peak_queue_depth <= seq.messages,
            "peak {} exceeds delivered messages {}",
            seq.peak_queue_depth,
            seq.messages
        );
    }

    /// Per-round monotonicity, observed through deterministic prefix
    /// re-runs (the engine contract makes an execution's prefix
    /// bit-reproducible): `messages`/`bits`/`peak_queue_depth` after
    /// `t + 1` rounds dominate those after `t` rounds, the whole trace
    /// is identical across all four backends, and after the final
    /// settle the peak never exceeds the delivered-message total.
    #[test]
    fn per_round_counters_monotone_and_identical(
        n in 10usize..60,
        rounds in 1usize..6,
        shards in 2usize..6,
        seed in 0u64..300,
    ) {
        let g = generators::connected_gnp(n, 5.0 / n as f64, seed);
        let config = SimConfig::with_bandwidth(16);

        // One expansion per engine type: metrics after 0..=rounds steps
        // of the same seeded program (the last entry also settles).
        macro_rules! prefix_trace {
            ($mk:expr) => {{
                let mut out: Vec<(u64, u64, u64)> = Vec::with_capacity(rounds + 1);
                for t in 0..=rounds {
                    let mut sim = $mk;
                    let mut acc: Vec<u64> = vec![0; n];
                    let mut phase = sim.phase::<u64>();
                    for r in 0..t {
                        phase.step(&mut acc, |a, v, inbox, o| {
                            *a = a.wrapping_add(inbox.len() as u64);
                            // Mixed sizes force fragmentation + queueing.
                            let bits = if (v.0 as usize + r) % 3 == 0 { 40 } else { 6 };
                            o.broadcast(v, u64::from(v.0) ^ r as u64, bits);
                        });
                    }
                    if t == rounds {
                        phase.settle(10_000, &mut acc, |a, _v, inbox| {
                            *a = a.wrapping_add(inbox.len() as u64);
                        });
                    }
                    drop(phase);
                    let m = RoundEngine::metrics(&sim);
                    out.push((m.messages, m.bits, m.peak_queue_depth));
                }
                out
            }};
        }
        let seq_trace = prefix_trace!(Simulator::new(&g, config));
        let sha_trace = prefix_trace!(ShardedSimulator::with_shards(&g, config, shards));
        let poo_trace = prefix_trace!(PooledSimulator::with_shards(&g, config, shards));
        let pro_trace = prefix_trace!(ProcessSimulator::with_shards(&g, config, shards));

        prop_assert_eq!(&seq_trace, &sha_trace, "sharded per-round trace diverged");
        prop_assert_eq!(&seq_trace, &poo_trace, "pooled per-round trace diverged");
        prop_assert_eq!(&seq_trace, &pro_trace, "process per-round trace diverged");
        for w in seq_trace.windows(2) {
            prop_assert!(w[1].0 >= w[0].0, "messages not monotone: {:?}", seq_trace);
            prop_assert!(w[1].1 >= w[0].1, "bits not monotone: {:?}", seq_trace);
            prop_assert!(w[1].2 >= w[0].2, "peak not monotone: {:?}", seq_trace);
        }
        let (final_messages, _, final_peak) = *seq_trace.last().unwrap();
        prop_assert!(final_peak <= final_messages);
    }
}
